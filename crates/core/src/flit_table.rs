//! The FLIT table (§4.2.1, Figure 8).
//!
//! A 16-entry lookup table indexed by the 4-bit chunk mask produced by the
//! builder's first stage. Each entry gives the coalesced transaction's
//! start chunk and payload size. The paper's table emits packets spanning
//! the first through last active 64 B chunk, rounded up to the HMC sizes
//! 64 / 128 / 256 B — e.g. mask `0110` produces one 128 B request
//! (Figure 7 / Figure 8's worked example).
//!
//! The table costs 12 B of ROM (16 entries x 6 bits) and bounds the
//! second stage to one lookup cycle plus one build cycle.
//!
//! Two ablation policies are provided for the DESIGN.md studies:
//! [`FlitTablePolicy::Always256`] (the "just use the biggest packet"
//! strawman of §2.3.2) and [`FlitTablePolicy::PerChunk64`] (MSHR-style
//! fixed 64 B granularity).

use mac_types::{ChunkMask, FlitTablePolicy, ReqSize, CHUNK_BYTES};
use serde::{Deserialize, Serialize};

/// One FLIT-table entry: where the packet starts and how big it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableEntry {
    /// First 64 B chunk covered by the packet (`0..4`).
    pub start_chunk: u8,
    /// Packet payload size.
    pub size: ReqSize,
}

impl TableEntry {
    /// Byte offset of the packet start within the 256 B row.
    pub fn start_offset(&self) -> u64 {
        self.start_chunk as u64 * CHUNK_BYTES
    }
}

/// The materialized 16-entry lookup table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlitTable {
    entries: [Option<TableEntry>; 16],
    policy: FlitTablePolicy,
}

impl FlitTable {
    /// Build the table for a policy. Entry 0 (empty mask) is `None`: the
    /// ARQ never forwards an entry with no requested FLITs.
    pub fn new(policy: FlitTablePolicy) -> Self {
        let mut entries = [None; 16];
        for bits in 1u8..16 {
            let mask = ChunkMask::from_bits(bits);
            entries[bits as usize] = Some(match policy {
                FlitTablePolicy::SpanRounded => Self::span_rounded(mask),
                FlitTablePolicy::Always256 => TableEntry {
                    start_chunk: 0,
                    size: ReqSize::B256,
                },
                // PerChunk64 emits multiple packets; the table stores the
                // *first* chunk and callers expand with `lookup_multi`.
                FlitTablePolicy::PerChunk64 => TableEntry {
                    start_chunk: mask.first().unwrap(),
                    size: ReqSize::B64,
                },
            });
        }
        FlitTable { entries, policy }
    }

    /// The paper's mapping: cover first..=last active chunk, rounding the
    /// span up to 1, 2 or 4 chunks (64/128/256 B). A rounded-up span that
    /// would run past the end of the row is pulled back to stay in-row
    /// (e.g. span 2 starting at chunk 3 starts at chunk 2 instead).
    fn span_rounded(mask: ChunkMask) -> TableEntry {
        let first = mask.first().expect("non-empty mask");
        let span = mask.span();
        let (chunks, size) = match span {
            1 => (1u8, ReqSize::B64),
            2 => (2, ReqSize::B128),
            _ => (4, ReqSize::B256),
        };
        let start = first.min(4 - chunks);
        TableEntry {
            start_chunk: start,
            size,
        }
    }

    /// Single-packet lookup (SpanRounded / Always256). Returns `None` for
    /// the empty mask.
    pub fn lookup(&self, mask: ChunkMask) -> Option<TableEntry> {
        self.entries[mask.bits() as usize]
    }

    /// Full lookup: the list of packets this mask expands to under the
    /// configured policy (one packet except for `PerChunk64`).
    pub fn lookup_multi(&self, mask: ChunkMask) -> Vec<TableEntry> {
        if mask.is_empty() {
            return Vec::new();
        }
        match self.policy {
            FlitTablePolicy::PerChunk64 => (0..4)
                .filter(|&c| mask.bits() >> c & 1 == 1)
                .map(|c| TableEntry {
                    start_chunk: c,
                    size: ReqSize::B64,
                })
                .collect(),
            _ => vec![self.lookup(mask).expect("non-empty mask has an entry")],
        }
    }

    /// ROM size in bytes: 16 entries x 6 bits, as accounted in §4.2.1
    /// ("12B for the 16-entry look-up table").
    pub const ROM_BYTES: u64 = 12;

    /// The policy this table was built for.
    pub fn policy(&self) -> FlitTablePolicy {
        self.policy
    }
}

impl Default for FlitTable {
    fn default() -> Self {
        FlitTable::new(FlitTablePolicy::SpanRounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> FlitTable {
        FlitTable::default()
    }

    #[test]
    fn figure8_worked_example_0110_is_128b() {
        let e = t().lookup(ChunkMask::from_bits(0b0110)).unwrap();
        assert_eq!(e.size, ReqSize::B128);
        assert_eq!(e.start_chunk, 1);
        assert_eq!(e.start_offset(), 64);
    }

    #[test]
    fn single_chunk_masks_are_64b() {
        for c in 0..4u8 {
            let e = t().lookup(ChunkMask::from_bits(1 << c)).unwrap();
            assert_eq!(e.size, ReqSize::B64);
            assert_eq!(e.start_chunk, c);
        }
    }

    #[test]
    fn adjacent_pairs_are_128b() {
        for c in 0..3u8 {
            let e = t().lookup(ChunkMask::from_bits(0b11 << c)).unwrap();
            assert_eq!(e.size, ReqSize::B128);
            assert_eq!(e.start_chunk, c);
        }
    }

    #[test]
    fn sparse_masks_round_to_256b() {
        for bits in [
            0b0101u8, 0b1001, 0b1010, 0b0111, 0b1011, 0b1101, 0b1110, 0b1111,
        ] {
            let e = t().lookup(ChunkMask::from_bits(bits)).unwrap();
            assert_eq!(e.size, ReqSize::B256, "mask {bits:04b}");
            assert_eq!(e.start_chunk, 0);
        }
    }

    #[test]
    fn empty_mask_has_no_entry() {
        assert_eq!(t().lookup(ChunkMask::from_bits(0)), None);
        assert!(t().lookup_multi(ChunkMask::from_bits(0)).is_empty());
    }

    #[test]
    fn packets_always_fit_in_the_row() {
        for bits in 1u8..16 {
            let e = t().lookup(ChunkMask::from_bits(bits)).unwrap();
            let end = e.start_offset() + e.size.bytes();
            assert!(end <= 256, "mask {bits:04b} runs past the row: {end}");
        }
    }

    #[test]
    fn packets_cover_every_active_chunk() {
        for bits in 1u8..16 {
            let mask = ChunkMask::from_bits(bits);
            let e = t().lookup(mask).unwrap();
            let covered_first = e.start_chunk;
            let covered_last = e.start_chunk + (e.size.bytes() / 64) as u8 - 1;
            for c in 0..4u8 {
                if bits >> c & 1 == 1 {
                    assert!(
                        (covered_first..=covered_last).contains(&c),
                        "mask {bits:04b}: chunk {c} not covered by {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn always256_policy() {
        let t = FlitTable::new(FlitTablePolicy::Always256);
        for bits in 1u8..16 {
            let e = t.lookup(ChunkMask::from_bits(bits)).unwrap();
            assert_eq!(e.size, ReqSize::B256);
            assert_eq!(e.start_chunk, 0);
        }
    }

    #[test]
    fn per_chunk64_expands_to_one_packet_per_chunk() {
        let t = FlitTable::new(FlitTablePolicy::PerChunk64);
        let pkts = t.lookup_multi(ChunkMask::from_bits(0b1011));
        assert_eq!(pkts.len(), 3);
        assert!(pkts.iter().all(|p| p.size == ReqSize::B64));
        let starts: Vec<u8> = pkts.iter().map(|p| p.start_chunk).collect();
        assert_eq!(starts, vec![0, 1, 3]);
    }

    #[test]
    fn edge_aligned_spans_pull_back_into_row() {
        // Mask 1000 has span 1 at chunk 3 -> 64 B at chunk 3: fine.
        // A hypothetical span-2 rounding at chunk 3 must start at 2.
        let e = t().lookup(ChunkMask::from_bits(0b1000)).unwrap();
        assert_eq!((e.start_chunk, e.size), (3, ReqSize::B64));
        let e = t().lookup(ChunkMask::from_bits(0b1100)).unwrap();
        assert_eq!((e.start_chunk, e.size), (2, ReqSize::B128));
    }
}
