//! The two-stage pipelined Request Builder (§4.2, Figure 8).
//!
//! Stage 1 (1 cycle) OR-reduces the 16-bit FLIT map into the 4-bit chunk
//! mask. Stage 2 (2 cycles: table lookup + request assembly) consults the
//! FLIT table and emits the coalesced HMC transaction. With the ARQ
//! popping one entry every two cycles, the builder sustains the paper's
//! steady-state issue rate of 0.5 requests per cycle (§4.4).

use mac_telemetry::{TraceEvent, Tracer};
use mac_types::{ChunkMask, Cycle, FlitMap, HmcRequest, PhysAddr};
use serde::{Deserialize, Serialize};

use crate::arq::GroupEntry;
use crate::flit_table::FlitTable;

/// Stage-1 latch: the popped entry waiting for its OR-reduce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Stage1 {
    entry: GroupEntry,
    /// The OR-reduce result, computed once at latch time. The entry's
    /// FLIT map is frozen the moment it leaves the ARQ, so the mask is a
    /// pure function of the latch contents; computing it at `push`
    /// batches the reduction instead of re-deriving it on the s1→s2
    /// move.
    mask: ChunkMask,
    ready_at: Cycle,
}

/// Stage-2 latch: entry plus its computed chunk mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Stage2 {
    entry: GroupEntry,
    mask: ChunkMask,
    ready_at: Cycle,
}

/// The pipelined builder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestBuilder {
    table: FlitTable,
    s1: Option<Stage1>,
    s2: Option<Stage2>,
    s1_latency: u64,
    s2_latency: u64,
    tracer: Tracer,
}

impl RequestBuilder {
    /// Build from the FLIT table and the configured stage latencies.
    pub fn new(table: FlitTable, s1_latency: u64, s2_latency: u64) -> Self {
        RequestBuilder {
            table,
            s1: None,
            s2: None,
            s1_latency,
            s2_latency,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer (disabled by default; tracing is observational).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Whether stage 1 can latch a new entry this cycle.
    pub fn can_accept(&self) -> bool {
        self.s1.is_none()
    }

    /// Latch a popped ARQ entry into stage 1 at cycle `now`.
    pub fn push(&mut self, entry: GroupEntry, now: Cycle) {
        debug_assert!(self.can_accept(), "stage 1 occupied");
        debug_assert!(!entry.flit_map.is_empty(), "entries always carry >=1 FLIT");
        self.tracer.emit(now, || TraceEvent::BuilderStage1 {
            entry: entry.entry_id as u32,
        });
        let mask = entry.flit_map.chunk_mask();
        self.s1 = Some(Stage1 {
            entry,
            mask,
            ready_at: now + self.s1_latency,
        });
    }

    /// Earliest cycle at which [`RequestBuilder::tick`] could change
    /// state (a latch completing or an emit), or `None` when both stages
    /// are empty. When stage 1 is blocked behind an occupied stage 2 the
    /// true next change is stage 2's emit; the value returned is always a
    /// conservative lower bound on it.
    pub fn next_ready(&self) -> Option<Cycle> {
        match (&self.s1, &self.s2) {
            (None, None) => None,
            (Some(s1), None) => Some(s1.ready_at),
            (None, Some(s2)) => Some(s2.ready_at),
            // Stage 1 cannot move until stage 2 emits.
            (Some(_), Some(s2)) => Some(s2.ready_at),
        }
    }

    /// Advance the pipeline one cycle; returns any transactions completed
    /// at `now` (one, except for the PerChunk64 ablation policy which may
    /// emit several 64 B packets from one entry).
    pub fn tick(&mut self, now: Cycle) -> Vec<HmcRequest> {
        let mut out = Vec::new();

        if let Some(s2) = &self.s2 {
            if s2.ready_at <= now {
                let s2 = self.s2.take().expect("checked above");
                out = self.assemble(s2.entry, s2.mask, now);
            }
        }

        if self.s2.is_none() {
            if let Some(s1) = &self.s1 {
                if s1.ready_at <= now {
                    let s1 = self.s1.take().expect("checked above");
                    // Stage 1's combinational result: the OR-reduce,
                    // computed once when the entry was latched.
                    let mask = s1.mask;
                    let entry = s1.entry.entry_id as u32;
                    self.tracer.emit(now, || TraceEvent::BuilderStage2 {
                        entry,
                        chunk_mask: mask.bits(),
                    });
                    self.s2 = Some(Stage2 {
                        entry: s1.entry,
                        mask,
                        ready_at: now + self.s2_latency,
                    });
                }
            }
        }

        out
    }

    /// True when both stages are empty (used to drain at end of run).
    pub fn is_empty(&self) -> bool {
        self.s1.is_none() && self.s2.is_none()
    }

    /// Assemble the final transaction(s) from a stage-2 latch.
    fn assemble(&self, entry: GroupEntry, mask: ChunkMask, now: Cycle) -> Vec<HmcRequest> {
        let row_base = entry.row.base_addr();
        let packets = self.table.lookup_multi(mask);
        debug_assert!(!packets.is_empty());
        self.tracer.emit(now, || TraceEvent::BuilderEmit {
            entry: entry.entry_id as u32,
            bytes: packets.iter().map(|p| p.size.bytes() as u16).sum(),
            targets: entry.targets.len() as u8,
        });
        if packets.len() == 1 {
            let p = packets[0];
            return vec![HmcRequest {
                addr: PhysAddr::new(row_base.raw() + p.start_offset()),
                size: p.size,
                is_write: entry.is_store,
                is_atomic: false,
                flit_map: entry.flit_map,
                targets: entry.targets,
                raw_ids: entry.raw_ids,
                dispatched_at: now,
            }];
        }
        // PerChunk64 ablation: split targets across the per-chunk packets.
        packets
            .into_iter()
            .map(|p| {
                let lo = p.start_chunk * 4;
                let hi = lo + 4;
                let chunk_bits = FlitMap::from_bits(entry.flit_map.bits() & (0xF << lo));
                let mut targets = Vec::new();
                let mut ids = Vec::new();
                for (t, id) in entry.targets.iter().zip(&entry.raw_ids) {
                    if (lo..hi).contains(&t.flit) {
                        targets.push(*t);
                        ids.push(*id);
                    }
                }
                HmcRequest {
                    addr: PhysAddr::new(row_base.raw() + p.start_offset()),
                    size: p.size,
                    is_write: entry.is_store,
                    is_atomic: false,
                    flit_map: chunk_bits,
                    targets,
                    raw_ids: ids,
                    dispatched_at: now,
                }
            })
            .collect()
    }
}

impl Default for RequestBuilder {
    fn default() -> Self {
        RequestBuilder::new(FlitTable::default(), 1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_types::{FlitTablePolicy, ReqSize, RowId, Target, TransactionId};

    fn entry(row: u64, flits: &[u8], store: bool) -> GroupEntry {
        let mut fm = FlitMap::new();
        let mut targets = Vec::new();
        let mut ids = Vec::new();
        for (i, &f) in flits.iter().enumerate() {
            fm.set(f);
            targets.push(Target {
                tid: i as u16,
                tag: 0,
                flit: f,
            });
            ids.push(TransactionId(i as u64));
        }
        GroupEntry {
            entry_id: 0,
            tagged_row: 0,
            row: RowId(row),
            is_store: store,
            flit_map: fm,
            targets,
            raw_ids: ids,
            allocated_at: 0,
        }
    }

    #[test]
    fn figure7_entry_builds_128b_at_offset_64() {
        let mut b = RequestBuilder::default();
        b.push(entry(0xA, &[6, 8, 9], false), 0);
        assert!(b.tick(0).is_empty(), "stage 1 takes a cycle");
        assert!(b.tick(1).is_empty(), "stage 2 takes two cycles");
        assert!(b.tick(2).is_empty());
        let out = b.tick(3);
        assert_eq!(out.len(), 1);
        let r = &out[0];
        assert_eq!(r.size, ReqSize::B128);
        assert_eq!(r.addr.raw(), (0xA << 8) + 64);
        assert_eq!(r.merged_count(), 3);
        assert!(!r.is_write);
        assert!(b.is_empty());
    }

    #[test]
    fn pipeline_latency_is_three_cycles_end_to_end() {
        let mut b = RequestBuilder::default();
        b.push(entry(1, &[0], false), 10);
        // ready: s1 at 11, moves to s2 at 11, emits at 13.
        assert!(b.tick(11).is_empty());
        assert!(b.tick(12).is_empty());
        assert_eq!(b.tick(13).len(), 1);
    }

    #[test]
    fn pipelining_overlaps_two_entries() {
        let mut b = RequestBuilder::default();
        b.push(entry(1, &[0], false), 0);
        b.tick(1); // entry 1 -> stage 2
        assert!(b.can_accept());
        b.push(entry(2, &[1], false), 2);
        let out3 = b.tick(3); // entry 1 emits; entry 2 -> stage 2
        assert_eq!(out3.len(), 1);
        let out5 = b.tick(5);
        assert_eq!(out5.len(), 1);
        assert_eq!(out5[0].addr.row(), RowId(2));
    }

    #[test]
    fn store_entries_build_write_requests() {
        let mut b = RequestBuilder::default();
        b.push(entry(3, &[0, 15], true), 0);
        b.tick(1);
        let out = b.tick(3);
        assert_eq!(out[0].size, ReqSize::B256, "span 4 chunks");
        assert!(out[0].is_write);
    }

    #[test]
    fn full_row_builds_256b_at_row_base() {
        let flits: Vec<u8> = (0..16).collect();
        let mut b = RequestBuilder::default();
        b.push(entry(0x20, &flits, false), 0);
        b.tick(1);
        let out = b.tick(3);
        assert_eq!(out[0].size, ReqSize::B256);
        assert_eq!(out[0].addr, RowId(0x20).base_addr());
        assert_eq!(out[0].merged_count(), 16);
    }

    #[test]
    fn per_chunk64_splits_targets_by_chunk() {
        let table = FlitTable::new(FlitTablePolicy::PerChunk64);
        let mut b = RequestBuilder::new(table, 1, 2);
        b.push(entry(0x9, &[1, 6, 14], false), 0);
        b.tick(1);
        let out = b.tick(3);
        assert_eq!(out.len(), 3);
        for r in &out {
            assert_eq!(r.size, ReqSize::B64);
            assert_eq!(r.merged_count(), 1, "one target per chunk here");
            assert_eq!(r.flit_map.count(), 1);
        }
        let offsets: Vec<u64> = out.iter().map(|r| r.addr.raw() - 0x900).collect();
        assert_eq!(offsets, vec![0, 64, 192]);
    }

    #[test]
    fn can_accept_reflects_stage1_occupancy() {
        let mut b = RequestBuilder::default();
        assert!(b.can_accept());
        b.push(entry(1, &[0], false), 0);
        assert!(!b.can_accept());
        b.tick(1); // moves to stage 2
        assert!(b.can_accept());
        assert!(!b.is_empty());
    }
}
