//! # mac-coalescer
//!
//! The paper's contribution: the **Memory Access Coalescer** (MAC), a
//! processor-side coalescing unit for packetized 3D-stacked memory.
//!
//! Components (paper §3–§4, Figures 4–8):
//!
//! * [`router`] — the request router that classifies raw requests into
//!   local / remote / global FIFO queues (§3.1), and the response router
//!   that delivers data back to the originating threads (§3.3).
//! * [`arq`] — the **Raw Request Aggregator**: a FIFO Aggregated Request
//!   Queue whose entries carry a row-number CAM tag (with the `T` type
//!   bit), a 16-bit FLIT map, and up to 12 merged 4.5 B targets. Handles
//!   memory fences (comparators disabled until the fence drains) and the
//!   latency-hiding fill mechanism (§4.1).
//! * [`flit_table`] — the 16-entry lookup table mapping the 4-bit chunk
//!   mask to a coalesced packet start/size (§4.2.1), plus the ablation
//!   policies DESIGN.md calls out.
//! * [`builder`] — the two-stage pipelined **Request Builder**: stage 1
//!   OR-reduces the FLIT map into the chunk mask (1 cycle); stage 2 does
//!   the FLIT-table lookup and assembles the HMC transaction (2 cycles),
//!   for the paper's steady-state issue rate of 0.5 requests/cycle (§4.4).
//! * [`mac`] — the assembled unit: ARQ pop every 2 cycles, `B`-bit bypass
//!   path for un-mergeable rows, direct path for atomics, fence
//!   completion, and dispatch toward the device.
//! * [`area`] — the space-overhead model behind Figure 16.
//! * [`stats`] — coalescing-efficiency accounting (Eq. 3, Figures 10/15).
//! * [`adapt`] — the adaptive controller that retunes the pop interval,
//!   accept width, and bypass switch from sampled signals (DESIGN.md §17).

#![warn(missing_docs)]

pub mod adapt;
pub mod area;
pub mod arq;
pub mod builder;
pub mod flit_table;
pub mod mac;
pub mod router;
pub mod stats;

pub use adapt::{AdaptDecision, AdaptSignals, AdaptiveController};
pub use arq::{Arq, ArqEntry, InsertOutcome};
pub use builder::RequestBuilder;
pub use flit_table::{FlitTable, TableEntry};
pub use mac::{Mac, MacEvent};
pub use router::{RequestRouter, ResponseRouter, RoutedTo};
pub use stats::MacStats;
