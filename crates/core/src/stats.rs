//! MAC-side statistics: Eq. 3's coalescing efficiency, the Figure 15
//! targets-per-entry distribution, and the dispatch mix.

use mac_types::{Counter, ReqSize};
use serde::{Deserialize, Serialize};

/// Statistics accumulated by one MAC unit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MacStats {
    /// Raw load requests accepted.
    pub raw_loads: u64,
    /// Raw store requests accepted.
    pub raw_stores: u64,
    /// Raw atomic requests accepted.
    pub raw_atomics: u64,
    /// Raw fence markers accepted.
    pub raw_fences: u64,
    /// Transactions dispatched to the device, by payload size
    /// [16, 32, 64, 128, 256] B.
    pub emitted_by_size: [u64; 5],
    /// Dispatches that took the `B`-bit bypass path (single-request rows).
    pub emitted_bypass: u64,
    /// Dispatches assembled by the request builder.
    pub emitted_built: u64,
    /// Atomic dispatches (direct path).
    pub emitted_atomic: u64,
    /// Merged raw requests per *popped group entry* — Figure 15's
    /// "targets per ARQ entry".
    pub targets_per_entry: Counter,
    /// Latency-hiding fill bursts triggered (§4.1).
    pub fill_bursts: u64,
    /// Fences retired.
    pub fences_retired: u64,
}

impl MacStats {
    /// Raw memory requests that reach the device path (loads + stores +
    /// atomics; fences never become transactions).
    pub fn raw_memory_requests(&self) -> u64 {
        self.raw_loads + self.raw_stores + self.raw_atomics
    }

    /// Transactions dispatched to the device.
    pub fn emitted_total(&self) -> u64 {
        self.emitted_by_size.iter().sum()
    }

    /// Eq. 3 as literally written: `requests_with_MAC / requests_without`.
    pub fn request_ratio(&self) -> f64 {
        let raw = self.raw_memory_requests();
        if raw == 0 {
            0.0
        } else {
            self.emitted_total() as f64 / raw as f64
        }
    }

    /// Eq. 3 as the paper *uses* it (higher is better; "MAC coalesces over
    /// half of the raw requests"): the fraction of raw requests eliminated
    /// by coalescing, `1 − emitted/raw`.
    pub fn coalescing_efficiency(&self) -> f64 {
        let raw = self.raw_memory_requests();
        if raw == 0 {
            0.0
        } else {
            1.0 - self.emitted_total() as f64 / raw as f64
        }
    }

    /// Record one dispatch of the given size and provenance.
    pub fn record_dispatch(&mut self, size: ReqSize, provenance: Provenance) {
        let idx = match size {
            ReqSize::B16 => 0,
            ReqSize::B32 => 1,
            ReqSize::B64 => 2,
            ReqSize::B128 => 3,
            ReqSize::B256 => 4,
        };
        self.emitted_by_size[idx] += 1;
        match provenance {
            Provenance::Bypass => self.emitted_bypass += 1,
            Provenance::Built => self.emitted_built += 1,
            Provenance::Atomic => self.emitted_atomic += 1,
        }
    }

    /// Self-check the counters against each other, returning a
    /// description of the first inconsistency. Only identities valid at
    /// *any* instant of a run are checked (in-flight requests make
    /// stronger equalities transiently false); the conformance checker
    /// asserts the end-of-run identities separately.
    pub fn consistency_error(&self) -> Option<String> {
        let split = self.emitted_bypass + self.emitted_built + self.emitted_atomic;
        if self.emitted_total() != split {
            return Some(format!(
                "MacStats: size histogram total {} != provenance split {}",
                self.emitted_total(),
                split
            ));
        }
        if self.emitted_atomic > self.raw_atomics {
            return Some(format!(
                "MacStats: {} atomic dispatches from {} raw atomics",
                self.emitted_atomic, self.raw_atomics
            ));
        }
        if self.fences_retired > self.raw_fences {
            return Some(format!(
                "MacStats: {} fences retired but only {} accepted",
                self.fences_retired, self.raw_fences
            ));
        }
        let coalescable = u128::from(self.raw_loads + self.raw_stores);
        if self.targets_per_entry.sum > coalescable {
            return Some(format!(
                "MacStats: targets-per-entry sum {} exceeds raw loads+stores {}",
                self.targets_per_entry.sum, coalescable
            ));
        }
        None
    }

    /// Merge another MAC's stats (multi-node systems / parallel sweeps).
    pub fn merge(&mut self, other: &MacStats) {
        self.raw_loads += other.raw_loads;
        self.raw_stores += other.raw_stores;
        self.raw_atomics += other.raw_atomics;
        self.raw_fences += other.raw_fences;
        for i in 0..5 {
            self.emitted_by_size[i] += other.emitted_by_size[i];
        }
        self.emitted_bypass += other.emitted_bypass;
        self.emitted_built += other.emitted_built;
        self.emitted_atomic += other.emitted_atomic;
        self.targets_per_entry.merge(&other.targets_per_entry);
        self.fill_bursts += other.fill_bursts;
        self.fences_retired += other.fences_retired;
    }
}

/// Where a dispatched transaction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// `B`-bit bypass (16 B single-FLIT).
    Bypass,
    /// Request builder output (64–256 B).
    Built,
    /// Atomic direct path.
    Atomic,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_definitions_are_complementary() {
        let mut s = MacStats {
            raw_loads: 100,
            ..MacStats::default()
        };
        for _ in 0..40 {
            s.record_dispatch(ReqSize::B128, Provenance::Built);
        }
        assert!((s.request_ratio() - 0.4).abs() < 1e-9);
        assert!((s.coalescing_efficiency() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = MacStats::default();
        assert_eq!(s.request_ratio(), 0.0);
        assert_eq!(s.coalescing_efficiency(), 0.0);
        assert_eq!(s.emitted_total(), 0);
    }

    #[test]
    fn dispatch_provenance_is_tracked() {
        let mut s = MacStats::default();
        s.record_dispatch(ReqSize::B16, Provenance::Bypass);
        s.record_dispatch(ReqSize::B16, Provenance::Atomic);
        s.record_dispatch(ReqSize::B256, Provenance::Built);
        assert_eq!(s.emitted_by_size, [2, 0, 0, 0, 1]);
        assert_eq!(s.emitted_bypass, 1);
        assert_eq!(s.emitted_atomic, 1);
        assert_eq!(s.emitted_built, 1);
    }

    #[test]
    fn consistency_catches_split_mismatch() {
        let mut s = MacStats::default();
        assert_eq!(s.consistency_error(), None);
        s.raw_loads = 4;
        s.record_dispatch(ReqSize::B64, Provenance::Built);
        s.targets_per_entry.record(4);
        assert_eq!(s.consistency_error(), None);
        s.emitted_bypass += 1; // split no longer matches the histogram
        assert!(s.consistency_error().unwrap().contains("provenance split"));
        s.emitted_by_size[0] += 1;
        assert_eq!(s.consistency_error(), None);
        s.fences_retired = 1; // retired a fence that was never accepted
        assert!(s.consistency_error().is_some());
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = MacStats {
            raw_loads: 10,
            ..MacStats::default()
        };
        a.targets_per_entry.record(3);
        let mut b = MacStats {
            raw_stores: 5,
            ..MacStats::default()
        };
        b.targets_per_entry.record(1);
        a.merge(&b);
        assert_eq!(a.raw_memory_requests(), 15);
        assert_eq!(a.targets_per_entry.events, 2);
        assert_eq!(a.targets_per_entry.mean(), 2.0);
    }
}
