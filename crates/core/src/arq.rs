//! The Raw Request Aggregator and its Aggregated Request Queue (§4.1).
//!
//! The ARQ is a FIFO whose entries double as CAM lines: each incoming raw
//! request's `{T, row number}` key (the paper's §4.1.2 extension bits) is
//! compared against every pending entry in parallel. On a hit the request
//! merges into the entry — its FLIT-map bit is set and its 4.5 B target is
//! appended; on a miss a fresh entry is allocated at the tail.
//!
//! Fences allocate an entry and disable the comparators until they pop,
//! forcing program order around the fence. The latency-hiding mechanism
//! fills an under-utilized queue quickly: when more than half the entries
//! are free and a backlog is waiting in the access queues, that many
//! subsequent requests skip the comparators and claim fresh entries
//! directly (§4.1).

use mac_telemetry::{TraceEvent, Tracer};
use mac_types::{Cycle, FlitMap, MacConfig, MemOpKind, RawRequest, RowId, Target, TransactionId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One ARQ entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArqEntry {
    /// A (possibly merged) group of loads or stores to one DRAM row.
    Group(GroupEntry),
    /// A memory fence occupying one entry (§4.1).
    Fence(RawRequest),
}

/// The coalescable variant of an ARQ entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupEntry {
    /// Allocation sequence number, unique per ARQ instance. Purely
    /// observational: lets trace events for one entry (alloc, merges,
    /// pop, builder stages, emit) be correlated offline.
    pub entry_id: u64,
    /// CAM key: `{T bit, row number}`.
    pub tagged_row: u64,
    /// The DRAM row all merged requests fall into.
    pub row: RowId,
    /// `T` bit: true for stores.
    pub is_store: bool,
    /// Which FLITs of the row have been requested (Figure 6).
    pub flit_map: FlitMap,
    /// Merged targets, arrival order (≤ 12 for 64 B entries, §5.3.3).
    pub targets: Vec<Target>,
    /// Transaction ids, parallel to `targets`.
    pub raw_ids: Vec<TransactionId>,
    /// Cycle the entry was allocated (queue-residency accounting).
    pub allocated_at: Cycle,
}

impl GroupEntry {
    /// The `B` bypass bit (§4.1.2): set when only one request fell into
    /// the row, letting it skip the request builder.
    pub fn bypass(&self) -> bool {
        self.targets.len() == 1
    }

    /// Number of merged raw requests.
    pub fn merged(&self) -> usize {
        self.targets.len()
    }
}

/// Result of offering one raw request to the aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Merged into an existing entry (CAM hit).
    Merged,
    /// Allocated a fresh entry (CAM miss, or comparators disabled).
    Allocated,
    /// Queue full — caller must stall and retry.
    Full,
}

/// The Aggregated Request Queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arq {
    entries: VecDeque<ArqEntry>,
    capacity: usize,
    max_targets: usize,
    /// Fences currently queued; comparators are disabled while > 0.
    fences_pending: usize,
    /// Remaining requests in the current latency-hiding fill burst.
    fill_credit: usize,
    latency_hiding: bool,
    /// Number of fill bursts triggered (stat).
    pub fill_bursts: u64,
    /// Next `GroupEntry::entry_id` to hand out.
    next_entry_id: u64,
    tracer: Tracer,
}

impl Arq {
    /// Build an ARQ from the MAC configuration.
    pub fn new(cfg: &MacConfig) -> Self {
        assert!(cfg.arq_entries > 0, "ARQ needs at least one entry");
        Arq {
            entries: VecDeque::with_capacity(cfg.arq_entries),
            capacity: cfg.arq_entries,
            max_targets: cfg.max_targets_per_entry().max(1),
            fences_pending: 0,
            fill_credit: 0,
            latency_hiding: cfg.latency_hiding,
            fill_bursts: 0,
            next_entry_id: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer (disabled by default; tracing is observational).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Offer one raw request (one per cycle in hardware; enforced by the
    /// caller). Atomics must not be offered — they take the direct path.
    ///
    /// `backlog` is the number of raw requests currently waiting in the
    /// local/remote access queues behind this one. The latency-hiding
    /// mechanism (§4.1) uses it: when more than half the ARQ is free *and
    /// a backlog large enough to refill it is waiting*, the next `free`
    /// requests skip the comparators and bulk-load the queue ("ensure a
    /// sufficient amount of requests in the ARQ to perform aggregation").
    pub fn insert(&mut self, raw: RawRequest, backlog: usize) -> InsertOutcome {
        let at = raw.issued_at;
        self.insert_at(raw, backlog, at)
    }

    /// [`Arq::insert`] stamped with the current cycle `now` (used for
    /// trace events; the insert behavior itself is time-independent).
    pub fn insert_at(&mut self, raw: RawRequest, backlog: usize, now: Cycle) -> InsertOutcome {
        debug_assert!(raw.kind != MemOpKind::Atomic, "atomics bypass the ARQ");

        if raw.kind == MemOpKind::Fence {
            if self.entries.len() == self.capacity {
                return InsertOutcome::Full;
            }
            self.entries.push_back(ArqEntry::Fence(raw));
            self.fences_pending += 1;
            self.tracer
                .emit(now, || TraceEvent::ArqFence { id: raw.id.0 });
            return InsertOutcome::Allocated;
        }

        // Latency-hiding fill: when the queue is more than half empty and
        // a backlog is waiting upstream, claim fresh entries without
        // comparing (§4.1).
        if self.latency_hiding && self.fill_credit == 0 {
            let free = self.capacity - self.entries.len();
            if free > self.capacity / 2 && backlog >= free {
                self.fill_credit = free;
                self.fill_bursts += 1;
                self.tracer.emit(now, || TraceEvent::ArqFillBurst {
                    occupancy: self.entries.len() as u16,
                });
            }
        }

        let comparators_enabled = self.fences_pending == 0 && self.fill_credit == 0;
        if comparators_enabled {
            let key = raw.tagged_row();
            let max_targets = self.max_targets;
            for e in self.entries.iter_mut() {
                if let ArqEntry::Group(g) = e {
                    if g.tagged_row == key && g.targets.len() < max_targets {
                        g.flit_map.set(raw.addr.flit());
                        g.targets.push(raw.target);
                        g.raw_ids.push(raw.id);
                        let (entry, row, targets) =
                            (g.entry_id as u32, g.row.0, g.targets.len() as u8);
                        self.tracer.emit(now, || TraceEvent::ArqMerge {
                            entry,
                            row,
                            targets,
                        });
                        return InsertOutcome::Merged;
                    }
                }
            }
        }

        if self.entries.len() == self.capacity {
            return InsertOutcome::Full;
        }
        if self.fill_credit > 0 {
            self.fill_credit -= 1;
        }
        let entry_id = self.next_entry_id;
        self.next_entry_id += 1;
        let mut fm = FlitMap::new();
        fm.set(raw.addr.flit());
        self.entries.push_back(ArqEntry::Group(GroupEntry {
            entry_id,
            tagged_row: raw.tagged_row(),
            row: raw.addr.row(),
            is_store: raw.kind.type_bit(),
            flit_map: fm,
            targets: vec![raw.target],
            raw_ids: vec![raw.id],
            allocated_at: raw.issued_at,
        }));
        self.tracer.emit(now, || TraceEvent::ArqAlloc {
            entry: entry_id as u32,
            row: raw.addr.row().0,
            is_store: raw.kind.type_bit(),
            occupancy: self.entries.len() as u16,
        });
        InsertOutcome::Allocated
    }

    /// Pop the head entry for the request builder / bypass path.
    pub fn pop(&mut self) -> Option<ArqEntry> {
        let e = self.entries.pop_front()?;
        if matches!(e, ArqEntry::Fence(_)) {
            self.fences_pending -= 1;
        }
        Some(e)
    }

    /// Peek at the head entry without consuming it.
    pub fn peek(&self) -> Option<&ArqEntry> {
        self.entries.front()
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free entries (the counter driving the latency-hiding mechanism).
    pub fn free_entries(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a fence is currently queued (comparators disabled).
    pub fn fence_active(&self) -> bool {
        self.fences_pending > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_types::{NodeId, PhysAddr};

    fn cfg() -> MacConfig {
        // Disable latency hiding in unit tests so CAM behaviour is
        // directly observable; dedicated tests re-enable it.
        MacConfig {
            latency_hiding: false,
            ..MacConfig::default()
        }
    }

    fn raw(id: u64, addr: u64, kind: MemOpKind) -> RawRequest {
        let a = PhysAddr::new(addr);
        RawRequest {
            id: TransactionId(id),
            addr: a,
            kind,
            node: NodeId(0),
            home: NodeId(0),
            target: Target {
                tid: id as u16,
                tag: 0,
                flit: a.flit(),
            },
            issued_at: 0,
        }
    }

    #[test]
    fn figure7_merges_loads_and_separates_store() {
        let mut arq = Arq::new(&cfg());
        // Requests 1, 2, 4: loads to row 0xA, FLITs 6, 8, 9.
        assert_eq!(
            arq.insert(raw(1, 0xA60, MemOpKind::Load), 0),
            InsertOutcome::Allocated
        );
        assert_eq!(
            arq.insert(raw(2, 0xA80, MemOpKind::Load), 0),
            InsertOutcome::Merged
        );
        // Request 3: store to the same row -> separate entry, T differs.
        assert_eq!(
            arq.insert(raw(3, 0xA70, MemOpKind::Store), 0),
            InsertOutcome::Allocated
        );
        assert_eq!(
            arq.insert(raw(4, 0xA90, MemOpKind::Load), 0),
            InsertOutcome::Merged
        );
        assert_eq!(arq.len(), 2);

        let ArqEntry::Group(loads) = arq.pop().unwrap() else {
            panic!("expected group")
        };
        assert_eq!(loads.merged(), 3);
        assert!(!loads.is_store);
        assert_eq!(loads.flit_map.bits(), (1 << 6) | (1 << 8) | (1 << 9));
        assert!(!loads.bypass());

        let ArqEntry::Group(store) = arq.pop().unwrap() else {
            panic!("expected group")
        };
        assert_eq!(store.merged(), 1);
        assert!(store.is_store);
        assert!(store.bypass(), "single-request row sets the B bit");
    }

    #[test]
    fn different_rows_do_not_merge() {
        let mut arq = Arq::new(&cfg());
        arq.insert(raw(1, 0xA00, MemOpKind::Load), 0);
        assert_eq!(
            arq.insert(raw(2, 0xB00, MemOpKind::Load), 0),
            InsertOutcome::Allocated
        );
        assert_eq!(arq.len(), 2);
    }

    #[test]
    fn entry_target_limit_spills_to_new_entry() {
        let mut arq = Arq::new(&cfg());
        // 12 targets fit (64 B entry); the 13th same-row request spills.
        for i in 0..12 {
            let out = arq.insert(raw(i, 0xA00 + (i % 16) * 16, MemOpKind::Load), 0);
            if i == 0 {
                assert_eq!(out, InsertOutcome::Allocated);
            } else {
                assert_eq!(out, InsertOutcome::Merged, "request {i}");
            }
        }
        assert_eq!(
            arq.insert(raw(12, 0xA00, MemOpKind::Load), 0),
            InsertOutcome::Allocated
        );
        assert_eq!(arq.len(), 2);
    }

    #[test]
    fn full_queue_backpressures() {
        let mut arq = Arq::new(&MacConfig {
            arq_entries: 2,
            latency_hiding: false,
            ..cfg()
        });
        arq.insert(raw(1, 0x000, MemOpKind::Load), 0);
        arq.insert(raw(2, 0x100, MemOpKind::Load), 0);
        assert_eq!(
            arq.insert(raw(3, 0x200, MemOpKind::Load), 0),
            InsertOutcome::Full
        );
        // Same-row merge still works when full.
        assert_eq!(
            arq.insert(raw(4, 0x010, MemOpKind::Load), 0),
            InsertOutcome::Merged
        );
        assert_eq!(arq.free_entries(), 0);
    }

    #[test]
    fn fence_disables_merging_until_popped() {
        let mut arq = Arq::new(&cfg());
        arq.insert(raw(1, 0xA00, MemOpKind::Load), 0);
        arq.insert(raw(2, 0xF00, MemOpKind::Fence), 0);
        assert!(arq.fence_active());
        // Same row as request 1, but the fence forces a fresh entry.
        assert_eq!(
            arq.insert(raw(3, 0xA10, MemOpKind::Load), 0),
            InsertOutcome::Allocated
        );
        assert_eq!(arq.len(), 3);

        // Drain up to and including the fence; merging resumes.
        arq.pop(); // group 1
        let fence = arq.pop().unwrap(); // fence
        assert!(matches!(fence, ArqEntry::Fence(_)));
        assert!(!arq.fence_active());
        assert_eq!(
            arq.insert(raw(4, 0xA20, MemOpKind::Load), 0),
            InsertOutcome::Merged
        );
    }

    #[test]
    fn two_fences_keep_comparators_off_until_both_pop() {
        let mut arq = Arq::new(&cfg());
        arq.insert(raw(1, 0xF00, MemOpKind::Fence), 0);
        arq.insert(raw(2, 0xF00, MemOpKind::Fence), 0);
        arq.pop();
        assert!(arq.fence_active(), "second fence still queued");
        arq.pop();
        assert!(!arq.fence_active());
    }

    #[test]
    fn latency_hiding_fill_skips_comparators() {
        let mut arq = Arq::new(&MacConfig::default()); // latency hiding on
                                                       // Queue empty (free 32 > half 16) and a 40-deep backlog waiting:
                                                       // fill burst of 32 begins.
        for i in 0..4 {
            // All four target the same row but must NOT merge during the burst.
            assert_eq!(
                arq.insert(raw(i, 0xA00 + i * 16, MemOpKind::Load), 40),
                InsertOutcome::Allocated
            );
        }
        assert_eq!(arq.len(), 4);
        assert_eq!(arq.fill_bursts, 1);

        // Without a backlog, the comparators stay on and same-row
        // requests merge normally.
        let mut quiet = Arq::new(&MacConfig::default());
        quiet.insert(raw(10, 0xB00, MemOpKind::Load), 0);
        assert_eq!(
            quiet.insert(raw(11, 0xB10, MemOpKind::Load), 0),
            InsertOutcome::Merged
        );
        assert_eq!(quiet.fill_bursts, 0);
    }

    #[test]
    fn fill_burst_ends_after_credit_consumed() {
        let cfg = MacConfig {
            arq_entries: 4,
            ..MacConfig::default()
        };
        let mut arq = Arq::new(&cfg);
        // free=4 > 2 with backlog 8 -> burst credit 4: four allocations
        // without merging.
        for i in 0..4 {
            assert_eq!(
                arq.insert(raw(i, 0xA00, MemOpKind::Load), 8),
                InsertOutcome::Allocated
            );
        }
        // Credit exhausted and queue full; same-row request now merges.
        assert_eq!(
            arq.insert(raw(9, 0xA00, MemOpKind::Load), 8),
            InsertOutcome::Merged
        );
    }

    #[test]
    fn pop_is_fifo() {
        let mut arq = Arq::new(&cfg());
        arq.insert(raw(1, 0xA00, MemOpKind::Load), 0);
        arq.insert(raw(2, 0xB00, MemOpKind::Load), 0);
        let ArqEntry::Group(first) = arq.pop().unwrap() else {
            panic!()
        };
        assert_eq!(first.row, PhysAddr::new(0xA00).row());
        assert!(arq.peek().is_some());
        assert_eq!(arq.len(), 1);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut arq = Arq::new(&cfg());
        assert!(arq.pop().is_none());
        assert!(arq.is_empty());
        assert_eq!(arq.capacity(), 32);
    }
}
