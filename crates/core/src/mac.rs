//! The assembled MAC unit (Figure 4's dashed box).
//!
//! Per cycle the MAC can: accept one raw request into the ARQ (or the
//! atomic direct path), pop one ARQ entry every `pop_interval` cycles —
//! retiring fences, dispatching `B`-bit bypass entries as single-FLIT
//! transactions, or latching group entries into the request builder — and
//! advance the builder pipeline, collecting any finished transaction.

use mac_telemetry::{TraceEvent, Tracer, POP_BUILDER, POP_BYPASS, POP_FENCE};
use mac_types::{Cycle, FlitMap, HmcRequest, MacConfig, MemOpKind, RawRequest, ReqSize};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::arq::{Arq, ArqEntry, InsertOutcome};
use crate::builder::RequestBuilder;
use crate::flit_table::FlitTable;
use crate::stats::{MacStats, Provenance};

/// Events produced by one MAC cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MacEvent {
    /// A transaction is ready to go to the 3D-stacked memory.
    Dispatch(HmcRequest),
    /// A fence has drained the ARQ ahead of it and retires.
    FenceRetired(RawRequest),
}

/// The Memory Access Coalescer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mac {
    cfg: MacConfig,
    arq: Arq,
    builder: RequestBuilder,
    /// Atomics waiting on the direct path (dispatched same cycle).
    direct: VecDeque<HmcRequest>,
    /// Next cycle at which the ARQ may pop (rate: 1 per `pop_interval`).
    next_pop: Cycle,
    stats: MacStats,
    tracer: Tracer,
}

impl Mac {
    /// Build a MAC from its configuration.
    pub fn new(cfg: &MacConfig) -> Self {
        Mac {
            cfg: cfg.clone(),
            arq: Arq::new(cfg),
            builder: RequestBuilder::new(
                FlitTable::new(cfg.flit_table),
                cfg.stage1_latency,
                cfg.stage2_latency,
            ),
            direct: VecDeque::new(),
            next_pop: 0,
            stats: MacStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer, shared with the ARQ and the request builder.
    /// Tracing is observational and never changes simulated behavior.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.arq.set_tracer(tracer.clone());
        self.builder.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Offer one raw request at cycle `now` (hardware accepts at most one
    /// per cycle; callers enforce that). Returns `false` on backpressure.
    pub fn try_accept(&mut self, raw: RawRequest, now: Cycle) -> bool {
        self.try_accept_with_backlog(raw, now, 0)
    }

    /// [`Mac::try_accept`] with the upstream queue depth, which drives the
    /// latency-hiding fill mechanism (§4.1).
    pub fn try_accept_with_backlog(&mut self, raw: RawRequest, now: Cycle, backlog: usize) -> bool {
        match raw.kind {
            MemOpKind::Atomic => {
                let mut fm = FlitMap::new();
                fm.set(raw.addr.flit());
                self.direct.push_back(HmcRequest {
                    addr: raw.addr.flit_base(),
                    size: ReqSize::B16,
                    is_write: false,
                    is_atomic: true,
                    flit_map: fm,
                    targets: vec![raw.target],
                    raw_ids: vec![raw.id],
                    dispatched_at: now,
                });
                self.stats.raw_atomics += 1;
                true
            }
            kind => match self.arq.insert_at(raw, backlog, now) {
                InsertOutcome::Full => false,
                _ => {
                    match kind {
                        MemOpKind::Load => self.stats.raw_loads += 1,
                        MemOpKind::Store => self.stats.raw_stores += 1,
                        MemOpKind::Fence => self.stats.raw_fences += 1,
                        MemOpKind::Atomic => unreachable!(),
                    }
                    true
                }
            },
        }
    }

    /// Advance one cycle; returns dispatches and fence retirements.
    pub fn tick(&mut self, now: Cycle) -> Vec<MacEvent> {
        let mut events = Vec::new();

        // Builder pipeline advances first (its stage-2 output was latched
        // in earlier cycles).
        for req in self.builder.tick(now) {
            self.stats.record_dispatch(req.size, Provenance::Built);
            self.emit_dispatch(&req, Provenance::Built, now);
            events.push(MacEvent::Dispatch(req));
        }

        // Atomic direct path: straight to the device (§4.1.2).
        while let Some(req) = self.direct.pop_front() {
            self.stats.record_dispatch(req.size, Provenance::Atomic);
            self.emit_dispatch(&req, Provenance::Atomic, now);
            events.push(MacEvent::Dispatch(req));
        }

        // ARQ pop, rate-limited to one entry per `pop_interval` cycles.
        if now >= self.next_pop {
            match self.arq.peek() {
                Some(ArqEntry::Fence(_)) => {
                    let Some(ArqEntry::Fence(f)) = self.arq.pop() else {
                        unreachable!()
                    };
                    self.stats.fences_retired += 1;
                    let occupancy = self.arq.len() as u16;
                    self.tracer.emit(now, || TraceEvent::ArqPop {
                        // Fences have no group entry id.
                        entry: u32::MAX,
                        kind: POP_FENCE,
                        occupancy,
                    });
                    self.tracer
                        .emit(now, || TraceEvent::FenceRetire { id: f.id.0 });
                    events.push(MacEvent::FenceRetired(f));
                    self.next_pop = now + self.cfg.pop_interval;
                }
                Some(ArqEntry::Group(g)) if self.cfg.bypass_enabled && g.bypass() => {
                    let Some(ArqEntry::Group(g)) = self.arq.pop() else {
                        unreachable!()
                    };
                    let occupancy = self.arq.len() as u16;
                    self.tracer.emit(now, || TraceEvent::ArqPop {
                        entry: g.entry_id as u32,
                        kind: POP_BYPASS,
                        occupancy,
                    });
                    // B bit set: skip the builder, dispatch the single
                    // FLIT directly (§4.1.2).
                    let flit = g.flit_map.first().expect("one FLIT set");
                    let req = HmcRequest {
                        addr: mac_types::PhysAddr::from_row_flit(g.row, flit),
                        size: ReqSize::B16,
                        is_write: g.is_store,
                        is_atomic: false,
                        flit_map: g.flit_map,
                        targets: g.targets,
                        raw_ids: g.raw_ids,
                        dispatched_at: now,
                    };
                    self.stats.targets_per_entry.record(1);
                    self.stats.record_dispatch(req.size, Provenance::Bypass);
                    self.emit_dispatch(&req, Provenance::Bypass, now);
                    events.push(MacEvent::Dispatch(req));
                    self.next_pop = now + self.cfg.pop_interval;
                }
                Some(ArqEntry::Group(_)) if self.builder.can_accept() => {
                    let Some(ArqEntry::Group(g)) = self.arq.pop() else {
                        unreachable!()
                    };
                    self.stats.targets_per_entry.record(g.merged() as u64);
                    let occupancy = self.arq.len() as u16;
                    self.tracer.emit(now, || TraceEvent::ArqPop {
                        entry: g.entry_id as u32,
                        kind: POP_BUILDER,
                        occupancy,
                    });
                    self.builder.push(g, now);
                    self.next_pop = now + self.cfg.pop_interval;
                }
                // Builder busy: retry next cycle without consuming the
                // pop slot.
                Some(ArqEntry::Group(_)) => {}
                None => {}
            }
        }

        self.stats.fill_bursts = self.arq.fill_bursts;
        events
    }

    /// Earliest cycle `>= now` at which [`Mac::tick`] could change state:
    /// a queued atomic dispatches, the builder pipeline latches or emits,
    /// or the ARQ's pop-rate window opens with entries waiting. `None`
    /// means the MAC is fully drained — ticking it is a no-op until a new
    /// request is accepted.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.direct.is_empty() {
            return Some(now);
        }
        let mut next = self.builder.next_ready();
        if !self.arq.is_empty() {
            let at = self.next_pop.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next.map(|t| t.max(now))
    }

    /// Emit the dispatch trace event for a transaction leaving the MAC.
    fn emit_dispatch(&self, req: &HmcRequest, provenance: Provenance, now: Cycle) {
        self.tracer.emit(now, || TraceEvent::Dispatch {
            addr: req.addr.raw(),
            bytes: req.size.bytes() as u16,
            provenance: provenance as u8,
            targets: req.targets.len() as u8,
        });
    }

    /// True when no work is in flight inside the MAC.
    pub fn is_drained(&self) -> bool {
        self.arq.is_empty() && self.builder.is_empty() && self.direct.is_empty()
    }

    /// Free ARQ entries (exported for backpressure decisions upstream).
    pub fn arq_free(&self) -> usize {
        self.arq.free_entries()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MacStats {
        &self.stats
    }

    /// The configuration this MAC was built with.
    pub fn config(&self) -> &MacConfig {
        &self.cfg
    }

    /// Retune the ARQ pop interval (the adaptive controller's rate
    /// knob, DESIGN.md §17). `next_pop` is an absolute cycle set at pop
    /// time, so a retune only affects pops scheduled *after* it — the
    /// event-skip lower bounds computed from the old interval stay
    /// valid. Clamped to ≥ 1.
    pub fn set_pop_interval(&mut self, v: u64) {
        self.cfg.pop_interval = v.max(1);
    }

    /// Open or close the 16 B bypass path (the adaptive controller's
    /// bypass knob). Takes effect at the next ARQ pop.
    pub fn set_bypass_enabled(&mut self, on: bool) {
        self.cfg.bypass_enabled = on;
    }

    /// Current ARQ occupancy (entries held, including a latched fence).
    pub fn arq_len(&self) -> usize {
        self.arq.len()
    }

    /// Total ARQ capacity in entries.
    pub fn arq_capacity(&self) -> usize {
        self.arq.capacity()
    }

    /// Append one metrics sample: ARQ occupancy and direct-path queue
    /// gauges plus cumulative request counters (the coalescing rate is
    /// the windowed delta of `emitted_requests` over `raw_requests`).
    /// Observational — reads state, never mutates it.
    pub fn sample_metrics(&self, s: &mut mac_metrics::Sampler<'_>) {
        s.gauge("arq_occupancy", self.arq.len() as u64);
        s.gauge("direct_queue", self.direct.len() as u64);
        s.counter("raw_requests", self.stats.raw_memory_requests());
        s.counter("emitted_requests", self.stats.emitted_total());
        s.counter("fences_retired", self.stats.fences_retired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_types::{NodeId, PhysAddr, Target, TransactionId};

    fn cfg() -> MacConfig {
        MacConfig {
            latency_hiding: false,
            ..MacConfig::default()
        }
    }

    fn raw(id: u64, addr: u64, kind: MemOpKind) -> RawRequest {
        let a = PhysAddr::new(addr);
        RawRequest {
            id: TransactionId(id),
            addr: a,
            kind,
            node: NodeId(0),
            home: NodeId(0),
            target: Target {
                tid: id as u16,
                tag: 0,
                flit: a.flit(),
            },
            issued_at: 0,
        }
    }

    /// Drive the MAC until it drains, collecting every event.
    fn run_to_drain(mac: &mut Mac, from: Cycle) -> Vec<MacEvent> {
        let mut events = Vec::new();
        let mut now = from;
        while !mac.is_drained() {
            events.extend(mac.tick(now));
            now += 1;
            assert!(now < from + 10_000, "MAC failed to drain");
        }
        events
    }

    fn dispatches(events: &[MacEvent]) -> Vec<&HmcRequest> {
        events
            .iter()
            .filter_map(|e| match e {
                MacEvent::Dispatch(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn figure7_end_to_end() {
        let mut mac = Mac::new(&cfg());
        assert!(mac.try_accept(raw(1, 0xA60, MemOpKind::Load), 0));
        assert!(mac.try_accept(raw(2, 0xA80, MemOpKind::Load), 1));
        assert!(mac.try_accept(raw(3, 0xA70, MemOpKind::Store), 2));
        assert!(mac.try_accept(raw(4, 0xA90, MemOpKind::Load), 3));
        let events = run_to_drain(&mut mac, 4);
        let d = dispatches(&events);
        assert_eq!(d.len(), 2);
        // The lone store takes the B-bit bypass (16 B) and skips the
        // builder pipeline, so it can overtake the merged loads (128 B).
        let built = d.iter().find(|r| !r.is_write).expect("load group");
        let bypass = d.iter().find(|r| r.is_write).expect("store");
        assert_eq!(built.size, ReqSize::B128);
        assert_eq!(built.merged_count(), 3);
        assert_eq!(bypass.size, ReqSize::B16);
        assert_eq!(mac.stats().emitted_bypass, 1);
        assert_eq!(mac.stats().emitted_built, 1);
        // 4 raw memory requests -> 2 transactions: efficiency 0.5.
        assert!((mac.stats().coalescing_efficiency() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sixteen_same_row_loads_coalesce_to_two_requests() {
        // Figure 2's scenario. A 64 B ARQ entry caps at 12 targets
        // (§5.3.3), so 16 same-row loads fill one 12-target entry (FLITs
        // 0..12 -> 256 B) and one 4-target entry (FLITs 12..16 -> 64 B).
        let mut mac = Mac::new(&cfg());
        for i in 0..16u64 {
            assert!(mac.try_accept(raw(i, 0x4000 + i * 16, MemOpKind::Load), i));
        }
        let events = run_to_drain(&mut mac, 16);
        let d = dispatches(&events);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].size, ReqSize::B256);
        assert_eq!(d[0].merged_count(), 12);
        assert_eq!(d[1].size, ReqSize::B64);
        assert_eq!(d[1].merged_count(), 4);
        // 16 raw -> 2 emitted: 87.5 % of requests eliminated.
        assert!((mac.stats().coalescing_efficiency() - 0.875).abs() < 1e-9);
    }

    #[test]
    fn atomics_take_the_direct_path_immediately() {
        let mut mac = Mac::new(&cfg());
        assert!(mac.try_accept(raw(1, 0xA00, MemOpKind::Atomic), 0));
        let ev = mac.tick(0);
        let d = dispatches(&ev);
        assert_eq!(d.len(), 1);
        assert!(d[0].is_atomic);
        assert_eq!(d[0].size, ReqSize::B16);
        assert_eq!(mac.stats().emitted_atomic, 1);
    }

    #[test]
    fn fence_retires_after_prior_entries_popped() {
        let mut mac = Mac::new(&cfg());
        mac.try_accept(raw(1, 0xA00, MemOpKind::Load), 0);
        mac.try_accept(raw(2, 0xF00, MemOpKind::Fence), 1);
        mac.try_accept(raw(3, 0xA10, MemOpKind::Load), 2);
        let events = run_to_drain(&mut mac, 3);
        // Order: load group 1 popped first, then the fence, then load 3.
        let fence_pos = events
            .iter()
            .position(|e| matches!(e, MacEvent::FenceRetired(_)))
            .expect("fence retired");
        let d: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, MacEvent::Dispatch(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(d.len(), 2);
        assert!(d[0] < fence_pos, "first load dispatched before fence");
        assert!(d[1] > fence_pos, "post-fence load dispatched after fence");
        assert_eq!(mac.stats().fences_retired, 1);
    }

    #[test]
    fn pop_rate_is_one_per_two_cycles() {
        let mut mac = Mac::new(&cfg());
        // Two independent single-FLIT rows -> two bypass dispatches.
        mac.try_accept(raw(1, 0x000, MemOpKind::Load), 0);
        mac.try_accept(raw(2, 0x100, MemOpKind::Load), 0);
        let e0 = mac.tick(0);
        let e1 = mac.tick(1);
        let e2 = mac.tick(2);
        assert_eq!(dispatches(&e0).len(), 1);
        assert_eq!(dispatches(&e1).len(), 0, "pop interval is 2 cycles");
        assert_eq!(dispatches(&e2).len(), 1);
    }

    #[test]
    fn backpressure_when_arq_full() {
        let small = MacConfig {
            arq_entries: 2,
            latency_hiding: false,
            ..MacConfig::default()
        };
        let mut mac = Mac::new(&small);
        assert!(mac.try_accept(raw(1, 0x000, MemOpKind::Load), 0));
        assert!(mac.try_accept(raw(2, 0x100, MemOpKind::Load), 0));
        assert!(!mac.try_accept(raw(3, 0x200, MemOpKind::Load), 0));
        assert_eq!(mac.arq_free(), 0);
        // Merge into an existing row still succeeds while full.
        assert!(mac.try_accept(raw(4, 0x010, MemOpKind::Load), 0));
    }

    #[test]
    fn bypass_disabled_routes_singles_through_builder() {
        let no_bypass = MacConfig {
            bypass_enabled: false,
            latency_hiding: false,
            ..MacConfig::default()
        };
        let mut mac = Mac::new(&no_bypass);
        mac.try_accept(raw(1, 0xA00, MemOpKind::Load), 0);
        let events = run_to_drain(&mut mac, 1);
        let d = dispatches(&events);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].size, ReqSize::B64, "builder emits 64 B minimum");
        assert_eq!(mac.stats().emitted_bypass, 0);
        assert_eq!(mac.stats().emitted_built, 1);
    }

    #[test]
    fn stats_track_raw_kinds() {
        let mut mac = Mac::new(&cfg());
        mac.try_accept(raw(1, 0x000, MemOpKind::Load), 0);
        mac.try_accept(raw(2, 0x100, MemOpKind::Store), 0);
        mac.try_accept(raw(3, 0x200, MemOpKind::Atomic), 0);
        mac.try_accept(raw(4, 0x300, MemOpKind::Fence), 0);
        let s = mac.stats();
        assert_eq!(s.raw_loads, 1);
        assert_eq!(s.raw_stores, 1);
        assert_eq!(s.raw_atomics, 1);
        assert_eq!(s.raw_fences, 1);
        assert_eq!(s.raw_memory_requests(), 3);
    }
}
