//! Request and response routers (§3.1, §3.3).
//!
//! The **request router** classifies each raw request by the home node of
//! its address: requests for the local 3D-stacked memory go to the *Local
//! Access Queue*; requests for remote devices leave through the *Global
//! Access Queue*; and raw requests arriving from other nodes land in the
//! *Remote Access Queue*. The local and remote queues feed the node's MAC
//! (one request per cycle, arbitrated round-robin); the global queue feeds
//! the interconnect.
//!
//! The **response router** fans a device response out into per-raw-request
//! completions keyed by target information, splitting local deliveries
//! from those that must travel back across the interconnect.

use mac_types::{Cycle, HmcResponse, NodeId, RawRequest, Target, TransactionId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which queue a routed request landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutedTo {
    /// Local access queue (request targets this node's memory).
    Local,
    /// Global access queue (request leaves for a remote node).
    Global,
    /// The target queue was full; the core must retry.
    Stalled,
}

/// The three FIFO queues decoupling cores from the memory subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRouter {
    node: NodeId,
    local: VecDeque<RawRequest>,
    remote: VecDeque<RawRequest>,
    global: VecDeque<RawRequest>,
    depth: usize,
    /// Round-robin arbitration state between local and remote queues.
    prefer_remote: bool,
}

impl RequestRouter {
    /// Build the router for `node` with per-queue capacity `depth`.
    pub fn new(node: NodeId, depth: usize) -> Self {
        RequestRouter {
            node,
            local: VecDeque::new(),
            remote: VecDeque::new(),
            global: VecDeque::new(),
            depth,
            prefer_remote: false,
        }
    }

    /// Route one locally generated raw request. Requests whose home is
    /// this node enter the local queue; others leave via the global queue.
    pub fn route(&mut self, raw: RawRequest) -> RoutedTo {
        if raw.home == self.node {
            if self.local.len() >= self.depth {
                return RoutedTo::Stalled;
            }
            self.local.push_back(raw);
            RoutedTo::Local
        } else {
            if self.global.len() >= self.depth {
                return RoutedTo::Stalled;
            }
            self.global.push_back(raw);
            RoutedTo::Global
        }
    }

    /// Accept a raw request arriving from a remote node. Returns `false`
    /// (and drops nothing) when the remote queue is full.
    pub fn accept_remote(&mut self, raw: RawRequest) -> bool {
        if self.remote.len() >= self.depth {
            return false;
        }
        self.remote.push_back(raw);
        true
    }

    /// Hand the next raw request to the MAC (one per cycle), arbitrating
    /// fairly between the local and remote queues.
    pub fn pop_for_mac(&mut self) -> Option<RawRequest> {
        let (first, second): (&mut VecDeque<_>, &mut VecDeque<_>) = if self.prefer_remote {
            (&mut self.remote, &mut self.local)
        } else {
            (&mut self.local, &mut self.remote)
        };
        let req = first.pop_front().or_else(|| second.pop_front());
        if req.is_some() {
            self.prefer_remote = !self.prefer_remote;
        }
        req
    }

    /// Re-queue a request the MAC refused (ARQ full) at the head of its
    /// originating queue so ordering is preserved.
    pub fn push_back_front(&mut self, raw: RawRequest) {
        if raw.node == self.node {
            self.local.push_front(raw);
        } else {
            self.remote.push_front(raw);
        }
    }

    /// Next request leaving for the interconnect.
    pub fn pop_global(&mut self) -> Option<RawRequest> {
        self.global.pop_front()
    }

    /// Total queued requests across the three queues.
    pub fn queued(&self) -> usize {
        self.local.len() + self.remote.len() + self.global.len()
    }

    /// True when all queues are empty.
    pub fn is_empty(&self) -> bool {
        self.queued() == 0
    }
}

/// One completed raw request, ready for delivery to its thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawCompletion {
    /// The raw request's simulator id.
    pub id: TransactionId,
    /// Target information (thread id, tag, FLIT).
    pub target: Target,
    /// Cycle the data became available at the node.
    pub completed_at: Cycle,
}

/// Fans device responses out to per-request completions (§3.3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseRouter {
    /// Completions delivered (stat).
    pub delivered: u64,
}

impl ResponseRouter {
    /// Build a response router.
    pub fn new() -> Self {
        ResponseRouter::default()
    }

    /// Expand one device response into the completions of every merged
    /// raw request it satisfies.
    pub fn expand(&mut self, rsp: &HmcResponse) -> Vec<RawCompletion> {
        let out: Vec<RawCompletion> = rsp
            .raw_ids
            .iter()
            .zip(&rsp.targets)
            .map(|(&id, &target)| RawCompletion {
                id,
                target,
                completed_at: rsp.completed_at,
            })
            .collect();
        self.delivered += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_types::{MemOpKind, PhysAddr, ReqSize};

    fn raw(id: u64, node: u16, home: u16) -> RawRequest {
        RawRequest {
            id: TransactionId(id),
            addr: PhysAddr::new(id * 16),
            kind: MemOpKind::Load,
            node: NodeId(node),
            home: NodeId(home),
            target: Target {
                tid: id as u16,
                tag: 0,
                flit: 0,
            },
            issued_at: 0,
        }
    }

    #[test]
    fn local_requests_go_local() {
        let mut r = RequestRouter::new(NodeId(0), 4);
        assert_eq!(r.route(raw(1, 0, 0)), RoutedTo::Local);
        assert_eq!(r.route(raw(2, 0, 3)), RoutedTo::Global);
        assert_eq!(r.queued(), 2);
        assert_eq!(r.pop_global().unwrap().id, TransactionId(2));
    }

    #[test]
    fn queues_backpressure_independently() {
        let mut r = RequestRouter::new(NodeId(0), 1);
        assert_eq!(r.route(raw(1, 0, 0)), RoutedTo::Local);
        assert_eq!(r.route(raw(2, 0, 0)), RoutedTo::Stalled);
        // Global queue still has room.
        assert_eq!(r.route(raw(3, 0, 1)), RoutedTo::Global);
        assert_eq!(r.route(raw(4, 0, 1)), RoutedTo::Stalled);
    }

    #[test]
    fn arbitration_alternates_between_local_and_remote() {
        let mut r = RequestRouter::new(NodeId(0), 8);
        r.route(raw(1, 0, 0));
        r.route(raw(2, 0, 0));
        assert!(r.accept_remote(raw(10, 1, 0)));
        assert!(r.accept_remote(raw(11, 1, 0)));
        let order: Vec<u64> = std::iter::from_fn(|| r.pop_for_mac())
            .map(|q| q.id.0)
            .collect();
        assert_eq!(order, vec![1, 10, 2, 11], "round-robin local/remote");
    }

    #[test]
    fn remote_queue_has_finite_depth() {
        let mut r = RequestRouter::new(NodeId(0), 2);
        assert!(r.accept_remote(raw(1, 1, 0)));
        assert!(r.accept_remote(raw(2, 1, 0)));
        assert!(!r.accept_remote(raw(3, 1, 0)));
    }

    #[test]
    fn refused_requests_return_to_queue_head() {
        let mut r = RequestRouter::new(NodeId(0), 4);
        r.route(raw(1, 0, 0));
        r.route(raw(2, 0, 0));
        let popped = r.pop_for_mac().unwrap();
        r.push_back_front(popped);
        assert_eq!(
            r.pop_for_mac().unwrap().id,
            TransactionId(1),
            "order preserved"
        );
    }

    #[test]
    fn response_expansion_pairs_ids_with_targets() {
        let mut rr = ResponseRouter::new();
        let rsp = HmcResponse {
            addr: PhysAddr::new(0xA00),
            size: ReqSize::B128,
            is_write: false,
            targets: vec![
                Target {
                    tid: 1,
                    tag: 7,
                    flit: 6,
                },
                Target {
                    tid: 2,
                    tag: 8,
                    flit: 8,
                },
            ],
            raw_ids: vec![TransactionId(100), TransactionId(101)],
            completed_at: 500,
            conflicts: 0,
        };
        let c = rr.expand(&rsp);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].id, TransactionId(100));
        assert_eq!(c[0].target.tid, 1);
        assert_eq!(c[1].target.flit, 8);
        assert!(c.iter().all(|x| x.completed_at == 500));
        assert_eq!(rr.delivered, 2);
    }
}
