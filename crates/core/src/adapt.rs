//! The adaptive coalescer controller (DESIGN.md §17).
//!
//! The paper fixes the MAC's operating point — pop one ARQ entry every
//! two cycles, accept one raw request per cycle, bypass single-request
//! rows — yet its own sensitivity sweeps (Figures 11/15, the
//! `ablate_pop_rate`/`ablate_accept_width`/`ablate_bypass` benches)
//! show the best setting shifts with the access pattern. This module
//! closes the loop: [`AdaptiveController`] consumes the mac-metrics
//! sampler signals at fixed interval boundaries and retunes the pop
//! interval, accept width, and bypass switch inside config-declared
//! bounds ([`mac_types::AdaptConfig`]).
//!
//! The controller is a *pure, deterministic* evidence-accumulation +
//! hysteresis state machine in the network-switch arbiter idiom: no
//! clock, no RNG, no floating point — the same signal sequence always
//! produces the same decision sequence, so simulations stay
//! reproducible, cacheable, and byte-identical across `--jobs` counts
//! and run-loop modes.
//!
//! Two evidence axes are accumulated per observation:
//!
//! * **rate axis** — decided by *where the queueing lives*. A
//!   backlogged device ([`DEVICE_BACKLOG_HIGH_MILLI`]) whose window
//!   shows merging is productive (the share of raw requests absorbed
//!   into merged packets is at least [`MERGE_YIELD_HIGH_MILLI`]) means
//!   device work is the binding resource and longer ARQ residency
//!   converts it into fewer, denser transactions — the axis votes
//!   *merge* (pop slower). The same backlog with no merge yield is
//!   unmergeable pressure — residency cannot buy density, and
//!   in-flight counts inflate under long latencies anyway (Little's
//!   law), so the axis holds rather than chase it. A backlogged ARQ
//!   ([`OCC_HIGH_MILLI`]) over a device with headroom means the MAC's
//!   own pop discipline is the bottleneck — the axis votes *drain*
//!   (pop faster, accept wider). Otherwise the window carries no rate
//!   signal and the evidence decays toward zero.
//! * **bypass axis** — a large bypass share ([`BYPASS_SHARE_HIGH_MILLI`])
//!   combined with a high vault bank-conflict rate
//!   ([`CONFLICT_HIGH_MILLI`]) votes to close the 16 B bypass path (let
//!   those rows wait and merge); a calm device votes to reopen it.
//!
//! An axis fires only when its evidence reaches the configured
//! threshold, the evidence resets on firing, and any retune latches a
//! hold of `hold_intervals` further observations during which no
//! decision can fire — so the controller provably makes at most one
//! retune per `hold_intervals + 1` intervals (the oscillation bound
//! `crates/core/tests/adapt_props.rs` proves by property testing).

use mac_types::AdaptConfig;

/// ARQ occupancy (milli-units of capacity) at or above which the MAC
/// queue counts as backlogged.
pub const OCC_HIGH_MILLI: u32 = 750;
/// Device backlog (milli-units of one in-flight transaction per vault)
/// at or above which the memory counts as the binding resource.
pub const DEVICE_BACKLOG_HIGH_MILLI: u32 = 750;
/// Share of the window's raw requests absorbed into merged packets at
/// or above which device pressure counts as *mergeable*. Below it, a
/// backlogged device is latency-bound traffic the pop interval cannot
/// help, and the rate axis holds instead of merging.
pub const MERGE_YIELD_HIGH_MILLI: u32 = 200;
/// Bypass share of the emitted mix above which the bypass axis starts
/// voting to close the path.
pub const BYPASS_SHARE_HIGH_MILLI: u32 = 400;
/// Vault bank-conflict rate above which bypass traffic is considered to
/// be thrashing the device.
pub const CONFLICT_HIGH_MILLI: u32 = 250;

/// One observation window's signals, all in milli-units (0..=1000).
///
/// The run loops derive these from windowed deltas of the cumulative
/// MAC and device statistics between two decision boundaries; the
/// occupancy is instantaneous at the boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptSignals {
    /// ARQ occupancy as a fraction of capacity.
    pub arq_occupancy_milli: u32,
    /// Device transactions in flight as a fraction of one per vault
    /// (saturates at 1000 — a deeper backlog is still "backlogged").
    pub device_backlog_milli: u32,
    /// Share of the window's raw requests that merged away: 1 − emitted
    /// packets over accepted raw requests (0 when nothing was accepted).
    pub merge_yield_milli: u32,
    /// Bypass packets over emitted packets in the window.
    pub bypass_share_milli: u32,
    /// 16 B packets over emitted packets in the window.
    pub small_packet_share_milli: u32,
    /// Device bank conflicts over device accesses in the window.
    pub conflict_rate_milli: u32,
}

/// One retune: the complete operating point the MAC should adopt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptDecision {
    /// Cycles between ARQ pops.
    pub pop_interval: u64,
    /// Raw requests accepted from the router per cycle.
    pub accepts_per_cycle: usize,
    /// Whether the 16 B bypass path is open.
    pub bypass_enabled: bool,
}

/// Pure evidence-accumulation + hysteresis controller. See the module
/// doc for the decision rules; construction clamps the starting point
/// into the configured bounds, and every decision it ever emits stays
/// inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveController {
    cfg: AdaptConfig,
    current: AdaptDecision,
    evidence_rate: i32,
    evidence_bypass: i32,
    hold: u32,
    retunes: u64,
}

impl AdaptiveController {
    /// Build a controller over `cfg`'s bounds, starting from `base`
    /// (the static MacConfig operating point) clamped into the bounds.
    pub fn new(cfg: &AdaptConfig, base: AdaptDecision) -> Self {
        let cfg = AdaptConfig {
            interval: cfg.interval.max(1),
            min_pop_interval: cfg.min_pop_interval.max(1),
            max_pop_interval: cfg.max_pop_interval.max(cfg.min_pop_interval.max(1)),
            min_accepts: cfg.min_accepts.max(1),
            max_accepts: cfg.max_accepts.max(cfg.min_accepts.max(1)),
            ..cfg.clone()
        };
        let current = AdaptDecision {
            pop_interval: base
                .pop_interval
                .clamp(cfg.min_pop_interval, cfg.max_pop_interval),
            accepts_per_cycle: base
                .accepts_per_cycle
                .clamp(cfg.min_accepts, cfg.max_accepts),
            bypass_enabled: base.bypass_enabled,
        };
        AdaptiveController {
            cfg,
            current,
            evidence_rate: 0,
            evidence_bypass: 0,
            hold: 0,
            retunes: 0,
        }
    }

    /// The operating point as of the last decision (or construction).
    pub fn current(&self) -> AdaptDecision {
        self.current
    }

    /// Sanitized bounds the controller enforces.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// Retunes emitted so far.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Rate-axis evidence (positive = drain pressure, negative = merge
    /// headroom), clamped to ±`evidence_threshold`.
    pub fn evidence_rate(&self) -> i32 {
        self.evidence_rate
    }

    /// Bypass-axis evidence (positive = close the path), clamped to
    /// ±`evidence_threshold`.
    pub fn evidence_bypass(&self) -> i32 {
        self.evidence_bypass
    }

    /// Observations remaining in the current post-retune hold.
    pub fn hold_remaining(&self) -> u32 {
        self.hold
    }

    /// Feed one interval's signals. Returns `Some(decision)` when the
    /// accumulated evidence crosses a threshold outside a hold window
    /// *and* the resulting operating point differs from the current one;
    /// `None` otherwise. Evidence keeps accumulating during holds, so a
    /// sustained phase fires as soon as the hold expires.
    pub fn observe(&mut self, s: &AdaptSignals) -> Option<AdaptDecision> {
        let threshold = self.cfg.evidence_threshold.max(1) as i32;

        // Rate axis votes: compare where the queueing lives. A
        // backlogged device wants denser transactions (pop slower) —
        // but only when the emitted mix shows residency actually buys
        // density; unmergeable pressure holds the point instead. A
        // backlogged ARQ over a device with headroom wants the pop
        // discipline out of the way (pop faster). The device check wins
        // when both are backlogged — extra MAC residency is free while
        // the memory is the bottleneck.
        if s.device_backlog_milli >= DEVICE_BACKLOG_HIGH_MILLI {
            if s.merge_yield_milli >= MERGE_YIELD_HIGH_MILLI {
                self.evidence_rate -= 1;
            } else {
                self.evidence_rate -= self.evidence_rate.signum();
            }
        } else if s.arq_occupancy_milli >= OCC_HIGH_MILLI {
            self.evidence_rate += 1;
        } else {
            self.evidence_rate -= self.evidence_rate.signum();
        }
        self.evidence_rate = self.evidence_rate.clamp(-threshold, threshold);

        // Bypass axis votes.
        if s.bypass_share_milli >= BYPASS_SHARE_HIGH_MILLI
            && s.conflict_rate_milli >= CONFLICT_HIGH_MILLI
        {
            self.evidence_bypass += 1;
        } else {
            self.evidence_bypass -= 1;
        }
        self.evidence_bypass = self.evidence_bypass.clamp(-threshold, threshold);

        if self.hold > 0 {
            self.hold -= 1;
            return None;
        }

        let mut next = self.current;
        let mut fired = false;
        if self.evidence_rate >= threshold {
            // Drain: halve the pop interval, widen the accept port.
            next.pop_interval = (next.pop_interval / 2).max(self.cfg.min_pop_interval);
            next.accepts_per_cycle = (next.accepts_per_cycle + 1).min(self.cfg.max_accepts);
            self.evidence_rate = 0;
            fired = true;
        } else if self.evidence_rate <= -threshold {
            // Merge: double the pop interval, narrow the accept port.
            next.pop_interval = (next.pop_interval * 2).min(self.cfg.max_pop_interval);
            next.accepts_per_cycle = next
                .accepts_per_cycle
                .saturating_sub(1)
                .max(self.cfg.min_accepts);
            self.evidence_rate = 0;
            fired = true;
        }
        if self.cfg.allow_bypass_toggle {
            if self.evidence_bypass >= threshold && next.bypass_enabled {
                next.bypass_enabled = false;
                self.evidence_bypass = 0;
                fired = true;
            } else if self.evidence_bypass <= -threshold && !next.bypass_enabled {
                next.bypass_enabled = true;
                self.evidence_bypass = 0;
                fired = true;
            }
        }
        if !fired || next == self.current {
            return None;
        }
        debug_assert!(
            (self.cfg.min_pop_interval..=self.cfg.max_pop_interval).contains(&next.pop_interval)
                && (self.cfg.min_accepts..=self.cfg.max_accepts).contains(&next.accepts_per_cycle),
            "decision escaped bounds"
        );
        self.current = next;
        self.hold = self.cfg.hold_intervals;
        self.retunes += 1;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(cfg: &AdaptConfig) -> AdaptiveController {
        AdaptiveController::new(
            cfg,
            AdaptDecision {
                pop_interval: 2,
                accepts_per_cycle: 1,
                bypass_enabled: true,
            },
        )
    }

    /// Backlogged device: memory is the binding resource, so the rate
    /// axis votes *merge* — even if the ARQ is also backlogged.
    fn device_bound() -> AdaptSignals {
        AdaptSignals {
            arq_occupancy_milli: 900,
            device_backlog_milli: 1000,
            merge_yield_milli: 600,
            ..AdaptSignals::default()
        }
    }

    /// Backlogged ARQ over an idle device: the pop discipline itself is
    /// the bottleneck, so the rate axis votes *drain*.
    fn mac_bound() -> AdaptSignals {
        AdaptSignals {
            arq_occupancy_milli: 900,
            device_backlog_milli: 100,
            ..AdaptSignals::default()
        }
    }

    fn idle() -> AdaptSignals {
        AdaptSignals {
            arq_occupancy_milli: 100,
            device_backlog_milli: 100,
            small_packet_share_milli: 800,
            ..AdaptSignals::default()
        }
    }

    #[test]
    fn mac_bound_backlog_drains_after_threshold_votes() {
        let mut c = ctl(&AdaptConfig::tuned());
        assert_eq!(c.observe(&mac_bound()), None);
        assert_eq!(c.observe(&mac_bound()), None);
        let d = c.observe(&mac_bound()).expect("third vote fires");
        assert_eq!(d.pop_interval, 1);
        assert_eq!(d.accepts_per_cycle, 2);
        assert!(d.bypass_enabled);
        assert_eq!(c.retunes(), 1);
    }

    #[test]
    fn device_bound_backlog_raises_pop_interval() {
        let mut c = ctl(&AdaptConfig::tuned());
        for _ in 0..2 {
            assert_eq!(c.observe(&device_bound()), None);
        }
        let d = c.observe(&device_bound()).expect("fires");
        assert_eq!(d.pop_interval, 4);
        assert_eq!(d.accepts_per_cycle, 1, "already at min_accepts");
    }

    #[test]
    fn unmergeable_device_pressure_holds_the_point() {
        // A deep in-flight count under an all-16 B mix (pointer-chase
        // style latency-bound traffic) must not drag the pop interval
        // in either direction.
        let mut c = ctl(&AdaptConfig::tuned());
        let s = AdaptSignals {
            arq_occupancy_milli: 1000,
            device_backlog_milli: 1000,
            merge_yield_milli: 0,
            bypass_share_milli: 1000,
            small_packet_share_milli: 950,
            conflict_rate_milli: 800,
        };
        for _ in 0..10 {
            assert_eq!(c.observe(&s), None);
            assert_eq!(c.evidence_rate(), 0, "unmergeable pressure holds");
        }
        assert_eq!(c.retunes(), 0);
    }

    #[test]
    fn idle_queues_carry_no_rate_signal() {
        let mut c = ctl(&AdaptConfig::tuned());
        for _ in 0..10 {
            assert_eq!(c.observe(&idle()), None);
            assert_eq!(c.evidence_rate(), 0, "no backlog, no vote");
        }
        assert_eq!(c.retunes(), 0);
    }

    #[test]
    fn hold_blocks_retunes_then_releases() {
        let cfg = AdaptConfig {
            hold_intervals: 2,
            ..AdaptConfig::tuned()
        };
        let mut c = ctl(&cfg);
        for _ in 0..2 {
            c.observe(&mac_bound());
        }
        assert!(c.observe(&mac_bound()).is_some());
        // Held for 2 observations even under continued pressure.
        assert_eq!(c.observe(&mac_bound()), None);
        assert_eq!(c.observe(&mac_bound()), None);
        // Evidence accumulated through the hold: fires immediately after.
        let d = c.observe(&mac_bound()).expect("hold expired");
        assert_eq!(d.pop_interval, 1, "already at min");
        assert_eq!(d.accepts_per_cycle, 3);
    }

    #[test]
    fn bypass_toggles_closed_and_back_open() {
        let cfg = AdaptConfig {
            evidence_threshold: 2,
            hold_intervals: 0,
            allow_bypass_toggle: true,
            ..AdaptConfig::tuned()
        };
        let mut c = ctl(&cfg);
        let thrash = AdaptSignals {
            arq_occupancy_milli: 500,
            bypass_share_milli: 700,
            conflict_rate_milli: 600,
            ..AdaptSignals::default()
        };
        assert_eq!(c.observe(&thrash), None);
        let d = c.observe(&thrash).expect("closes bypass");
        assert!(!d.bypass_enabled);
        let calm = AdaptSignals {
            arq_occupancy_milli: 500,
            ..AdaptSignals::default()
        };
        assert_eq!(c.observe(&calm), None);
        let d = c.observe(&calm).expect("reopens bypass");
        assert!(d.bypass_enabled);
    }

    #[test]
    fn bypass_toggle_can_be_forbidden() {
        let cfg = AdaptConfig {
            allow_bypass_toggle: false,
            evidence_threshold: 1,
            ..AdaptConfig::tuned()
        };
        let mut c = ctl(&cfg);
        let thrash = AdaptSignals {
            arq_occupancy_milli: 500,
            bypass_share_milli: 900,
            conflict_rate_milli: 900,
            ..AdaptSignals::default()
        };
        for _ in 0..10 {
            assert_eq!(c.observe(&thrash), None);
        }
        assert!(c.current().bypass_enabled);
    }

    #[test]
    fn identity_bounds_never_fire() {
        let cfg = AdaptConfig {
            min_pop_interval: 2,
            max_pop_interval: 2,
            min_accepts: 1,
            max_accepts: 1,
            allow_bypass_toggle: false,
            evidence_threshold: 1,
            hold_intervals: 0,
            ..AdaptConfig::tuned()
        };
        let mut c = ctl(&cfg);
        for s in [
            mac_bound(),
            device_bound(),
            mac_bound(),
            mac_bound(),
            idle(),
        ] {
            assert_eq!(c.observe(&s), None, "identity bounds cannot move");
        }
        assert_eq!(c.retunes(), 0);
    }

    #[test]
    fn construction_clamps_base_into_bounds() {
        let cfg = AdaptConfig {
            min_pop_interval: 4,
            max_pop_interval: 8,
            min_accepts: 2,
            max_accepts: 4,
            ..AdaptConfig::tuned()
        };
        let c = ctl(&cfg);
        assert_eq!(c.current().pop_interval, 4);
        assert_eq!(c.current().accepts_per_cycle, 2);
    }

    #[test]
    fn degenerate_config_is_sanitized() {
        let cfg = AdaptConfig {
            interval: 0,
            min_pop_interval: 0,
            max_pop_interval: 0,
            min_accepts: 0,
            max_accepts: 0,
            evidence_threshold: 0,
            ..AdaptConfig::tuned()
        };
        let mut c = ctl(&cfg);
        assert_eq!(c.config().interval, 1);
        assert_eq!(c.config().min_pop_interval, 1);
        assert!(c.config().max_pop_interval >= c.config().min_pop_interval);
        assert_eq!(c.config().min_accepts, 1);
        // A zero threshold acts as one: a single vote may fire, but the
        // decision still cannot leave the (degenerate) bounds.
        c.observe(&mac_bound());
        assert_eq!(c.current().pop_interval, 1);
        assert_eq!(c.current().accepts_per_cycle, 1);
    }

    #[test]
    fn mixed_signals_decay_evidence() {
        let mut c = ctl(&AdaptConfig::tuned());
        c.observe(&mac_bound());
        c.observe(&mac_bound());
        assert_eq!(c.evidence_rate(), 2);
        let neutral = AdaptSignals {
            arq_occupancy_milli: 500,
            ..AdaptSignals::default()
        };
        c.observe(&neutral);
        assert_eq!(c.evidence_rate(), 1, "decays toward zero");
        c.observe(&neutral);
        c.observe(&neutral);
        assert_eq!(c.evidence_rate(), 0, "saturates at zero");
    }
}
