//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`] and [`BufMut`] with the
//! exact surface the workspace codecs use (`HmcPacket` wire format and
//! the MACT trace-file format): big- and little-endian put/get, `freeze`,
//! `slice`, `remaining`, `copy_to_slice`, plus `Deref` so byte indexing
//! and range slicing work as with the real crate.
//!
//! Unlike the real crate there is no reference-counted zero-copy
//! machinery — `Bytes` owns a `Vec<u8>` and `slice`/`clone` copy. Every
//! buffer in this workspace is small (16 B packets, bounded trace
//! files), so the simplification is immaterial.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};

/// Read-side cursor over an immutable byte buffer.
pub trait Buf {
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: buffer underflow"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side interface for growable byte buffers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out a sub-range of the *unconsumed* bytes as a new `Bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.chunk()[start..end].to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.pos += n;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.chunk() == other
    }
}

/// Growable mutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn le_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0x1234);
        buf.put_u64_le(0xFACE_CAFE_1234_5678);
        assert_eq!(buf[0], 0x34); // little-endian on the wire
        let mut b = buf.freeze();
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u64_le(), 0xFACE_CAFE_1234_5678);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        b.advance(1);
        assert_eq!(&b.slice(0..2)[..], &[2, 3]);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
    }

    #[test]
    fn indexing_and_mutation() {
        let mut m = BytesMut::from(&[9u8, 8, 7][..]);
        m[0] = 1;
        assert_eq!(&m[..2], &[1, 8]);
        assert_eq!(m.freeze(), Bytes::from(vec![1u8, 8, 7]));
    }

    #[test]
    fn copy_to_slice_consumes() {
        let mut b = Bytes::from_static(b"MACT\x01\x00");
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MACT");
        assert_eq!(b.get_u16_le(), 1);
    }
}
