//! Offline stand-in for `serde`.
//!
//! See `crates/compat/README.md` for why this exists. The workspace uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking decoration on
//! stats/config/report types; nothing in the tree serializes through the
//! traits yet, so they are markers here. The blanket impls mean every
//! type satisfies them, which keeps trait bounds (if any appear later)
//! satisfied without per-type codegen.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
