//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use — `proptest!`, `prop_assert*`, `prop_oneof!` (weighted and
//! unweighted), `Just`, `any::<T>()`, integer-range strategies, tuple
//! strategies, `.prop_map`, and `prop::collection::vec` — on top of the
//! in-repo `rand` stub.
//!
//! Differences from the real crate, deliberate for an offline test
//! environment:
//! - **No shrinking.** A failing case panics with the sampled values in
//!   the assertion message instead of minimizing them.
//! - **Deterministic seeding.** Each `proptest!` test derives its RNG
//!   seed from the test's name (FNV-1a), so failures reproduce exactly
//!   across runs and machines; `.proptest-regressions` files are ignored.
//! - `PROPTEST_CASES` still overrides the per-test case count
//!   (default 96).

use std::ops::Range;

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, SeedableRng};

/// How values are generated for a `name in strategy` clause.
///
/// Object safe (`new_value` is dispatchable) so `prop_oneof!` can hold
/// heterogeneous arms as `Box<dyn Strategy<Value = V>>`.
pub trait Strategy {
    type Value;

    /// Sample one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `any::<T>()` can produce, uniformly over their whole domain.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// Strategy for any [`Arbitrary`] type.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Weighted choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u32,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Box a strategy arm for [`Union`] (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.lo..self.len.hi);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves as in real
/// proptest.
pub mod prop {
    pub use crate::collection;
}

/// Mirror of proptest's runner configuration; only `cases` is honored.
/// `max_shrink_iters` is accepted for source compatibility with real
/// proptest (this stub does not shrink).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: default_cases(),
            max_shrink_iters: 1024,
        }
    }
}

fn default_cases() -> u32 {
    96
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Per-test case count: `PROPTEST_CASES` env override, default 96.
pub fn cases() -> u32 {
    env_cases().unwrap_or_else(default_cases)
}

/// Case count under an explicit `proptest_config`; the env override
/// still wins so CI can dial effort globally.
pub fn config_cases(cfg: &ProptestConfig) -> u32 {
    env_cases().unwrap_or(cfg.cases)
}

/// Deterministic per-test RNG, seeded from the test name (FNV-1a).
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($crate::config_cases(&$cfg)) $($rest)*);
    };
    ($( $(#[$meta:meta])* fn $name:ident $args:tt $body:block )*) => {
        $crate::proptest!(@cases ($crate::cases()) $( $(#[$meta])* fn $name $args $body )*);
    };
    (@cases ($cases:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($strat,)+);
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..$cases {
                    let ($($arg,)+) = $crate::Strategy::new_value(&strategies, &mut rng);
                    let run = ::std::panic::AssertUnwindSafe(move || { $body });
                    if let Err(e) = ::std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest case {case} of {} failed (deterministic seed; \
                             rerun reproduces it)",
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( ($weight as u32, $crate::boxed($strat)) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (1u32, $crate::boxed($strat)) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 0usize..4, s in -5i64..5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w < 4);
            prop_assert!((-5..5).contains(&s));
        }

        #[test]
        fn oneof_and_map_compose(
            k in prop_oneof![3 => Just(1u8), 1 => Just(2u8)],
            m in (0u8..4).prop_map(|x| x * 2),
            t in (0u8..2, any::<bool>())
        ) {
            prop_assert!(k == 1 || k == 2);
            prop_assert!(m % 2 == 0 && m < 8);
            prop_assert!(t.0 < 2);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }
}
