//! Offline stand-in for `criterion`.
//!
//! Provides the measurement surface the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `Throughput`, `black_box`, `criterion_group!`, `criterion_main!`)
//! with a simple wall-clock harness: warm up, then time fixed-size
//! batches until the measurement window closes, and report the median
//! batch time per iteration. No statistical analysis, plots, or saved
//! baselines — run-to-run comparison is up to the reader.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units of work per iteration, echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_bench(&cfg, name, None, f);
        self
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        let full = format!("{}/{}", self.name, name);
        run_bench(&cfg, &full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` runs and
/// times the workload.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    samples_ns: Vec<f64>,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run untimed until the warm-up window closes, counting
        // iterations to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let warm_ns = warm_start.elapsed().as_nanos().max(1) as f64;
        let est_ns_per_iter = warm_ns / warm_iters.max(1) as f64;

        // Size batches so `sample_size` of them fit in the measurement
        // window, with at least one iteration per batch.
        let window_ns = self.cfg.measurement_time.as_nanos() as f64;
        let per_batch_ns = window_ns / self.cfg.sample_size as f64;
        let batch = (per_batch_ns / est_ns_per_iter).max(1.0) as u64;

        let meas_start = Instant::now();
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
            if meas_start.elapsed() > self.cfg.measurement_time * 2 {
                break; // runaway workload; keep whatever samples we have
            }
        }
    }
}

fn run_bench<F>(cfg: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        cfg,
        samples_ns: Vec::with_capacity(cfg.sample_size),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples_ns.sort_by(|a, c| a.total_cmp(c));
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let lo = b.samples_ns[0];
    let hi = b.samples_ns[b.samples_ns.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
        }
        None => String::new(),
    };
    println!("{name:<40} median {median:>12.1} ns/iter  [{lo:.1} .. {hi:.1}]{rate}");
}

/// Build the harness entry point functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = quick();
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0, "workload must have run");
    }

    #[test]
    fn groups_run_all_functions() {
        let mut c = quick();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(1));
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_function("b", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran >= 2);
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = smoke_target
    }

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("macro_smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macro_generated_group_runs() {
        smoke();
    }
}
