//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its stats and
//! config types so they stay serialization-ready, but no code in the
//! repo actually serializes them yet (there is no `serde_json` or other
//! format crate in the tree). These derives therefore only need to
//! *parse* — including `#[serde(...)]` helper attributes — and emit
//! nothing; the traits in the companion `serde` stub are markers with a
//! blanket implementation.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
