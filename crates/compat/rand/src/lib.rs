//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no access to a crates.io
//! mirror, so external dependencies are provided as small in-repo
//! compatibility crates (see `crates/compat/README.md`). This one covers
//! exactly the surface the simulator uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_bool, gen_range}`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — the same
//! construction real `rand 0.8` uses for `SmallRng` on 64-bit targets —
//! so statistical quality is adequate for workload synthesis and error
//! injection. Streams are *not* bit-compatible with crates.io `rand`;
//! every consumer in this workspace only relies on determinism for a
//! fixed seed, which this crate guarantees.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided;
/// that is the only constructor the workspace calls.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of any [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        sample_f64(self.next_u64()) < p
    }

    /// Return `true` with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            denominator > 0 && numerator <= denominator,
            "gen_ratio {numerator}/{denominator}"
        );
        uniform_u64(self, denominator as u64) < numerator as u64
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        sample_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Uniform f64 in `[0, 1)` from 53 random mantissa bits.
fn sample_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges `Rng::gen_range` accepts. Generic over the output type (like
/// real rand's `SampleRange<T>`) so integer literals unify with the
/// calling context.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the result unbiased without 128-bit widening
    // tricks: draw until the word falls inside the largest multiple of
    // `bound`.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full i64/isize domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + sample_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as used by rand_core for u64 seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(2usize..5);
            assert!((2..5).contains(&w));
            let x = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
