//! # rv64-sim
//!
//! A compact RV64IM(+A-subset) interpreter with a built-in assembler and
//! memory-trace capture — the workspace's stand-in for the paper's
//! RISC-V toolchain (Spike + cross-compiled binaries, §5.1).
//!
//! The paper's evaluation pipeline only consumes the *memory instruction
//! stream* each core produces (address, operation, thread/core target
//! info). This crate produces exactly that stream from real programs:
//!
//! * [`isa`] — the decoded instruction set: RV64I base, M extension,
//!   LR/SC + AMO from A, `FENCE`, `ECALL` (halt), and the two custom
//!   scratchpad instructions (`spm.fetch` / `spm.flush`) mirroring the
//!   paper's SPM-management ISA extension.
//! * [`mod@decode`] / [`mod@encode`] — binary ↔ decoded forms, round-trip tested.
//! * [`asm`] — a two-pass assembler with labels and common pseudo-ops so
//!   examples and tests can express kernels in readable assembly.
//! * [`cpu`] — the hart: fetch/decode/execute over a flat main memory plus
//!   a per-hart scratchpad region. Main-memory accesses emit
//!   [`trace::MemEvent`]s; scratchpad accesses do not (they are node-local
//!   and never reach the MAC, §3).
//!
//! The `soc-sim` crate schedules several harts and turns their events into
//! raw requests for the MAC.

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod isa;
pub mod trace;

pub use asm::{assemble, li_items, parse_line, AsmItem};
pub use cpu::{Cpu, ExecResult, FlatMemory, Memory, Trap, TrapKind};
pub use decode::decode;
pub use disasm::{disassemble, disassemble_image};
pub use encode::encode;
pub use isa::{Instruction, Reg};
pub use trace::{MemEvent, MemEventKind};
