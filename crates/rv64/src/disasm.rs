//! Disassembler: decoded instructions back to assembler-compatible text.
//!
//! `disassemble` produces the same syntax `asm::assemble` parses, so the
//! three representations round-trip: words → instructions → text → words.

use crate::isa::{AluImmOp, AluOp, AmoOp, BranchOp, Instruction, Width};

fn width_suffix(w: Width) -> &'static str {
    match w {
        Width::B => "b",
        Width::H => "h",
        Width::W => "w",
        Width::D => "d",
    }
}

/// Render one instruction as assembler text.
pub fn disassemble(ins: Instruction) -> String {
    use Instruction as I;
    match ins {
        I::Lui { rd, imm } => format!("lui {rd}, {}", imm >> 12),
        I::Auipc { rd, imm } => format!("auipc {rd}, {}", imm >> 12),
        I::Jal { rd, offset } => format!("jal {rd}, {offset}"),
        I::Jalr { rd, rs1, offset } => format!("jalr {rd}, {offset}({rs1})"),
        I::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let m = match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            };
            format!("{m} {rs1}, {rs2}, {offset}")
        }
        I::Load {
            rd,
            rs1,
            offset,
            width,
            signed,
        } => {
            let u = if signed || width == Width::D { "" } else { "u" };
            format!("l{}{u} {rd}, {offset}({rs1})", width_suffix(width))
        }
        I::Store {
            rs1,
            rs2,
            offset,
            width,
        } => {
            format!("s{} {rs2}, {offset}({rs1})", width_suffix(width))
        }
        I::AluImm { op, rd, rs1, imm } => {
            use AluImmOp::*;
            let m = match op {
                Addi => "addi",
                Slti => "slti",
                Sltiu => "sltiu",
                Xori => "xori",
                Ori => "ori",
                Andi => "andi",
                Slli => "slli",
                Srli => "srli",
                Srai => "srai",
                Addiw => "addiw",
                Slliw => "slliw",
                Srliw => "srliw",
                Sraiw => "sraiw",
            };
            format!("{m} {rd}, {rs1}, {imm}")
        }
        I::Alu { op, rd, rs1, rs2 } => {
            use AluOp::*;
            let m = match op {
                Add => "add",
                Sub => "sub",
                Sll => "sll",
                Slt => "slt",
                Sltu => "sltu",
                Xor => "xor",
                Srl => "srl",
                Sra => "sra",
                Or => "or",
                And => "and",
                Addw => "addw",
                Subw => "subw",
                Sllw => "sllw",
                Srlw => "srlw",
                Sraw => "sraw",
                Mul => "mul",
                Mulh => "mulh",
                Mulhsu => "mulhsu",
                Mulhu => "mulhu",
                Div => "div",
                Divu => "divu",
                Rem => "rem",
                Remu => "remu",
                Mulw => "mulw",
                Divw => "divw",
                Divuw => "divuw",
                Remw => "remw",
                Remuw => "remuw",
            };
            format!("{m} {rd}, {rs1}, {rs2}")
        }
        I::Fence => "fence".to_string(),
        I::Ecall => "ecall".to_string(),
        I::LoadReserved { rd, rs1, width } => {
            format!("lr.{} {rd}, ({rs1})", width_suffix(width))
        }
        I::StoreConditional {
            rd,
            rs1,
            rs2,
            width,
        } => {
            format!("sc.{} {rd}, {rs2}, ({rs1})", width_suffix(width))
        }
        I::Amo {
            op,
            rd,
            rs1,
            rs2,
            width,
        } => {
            let m = match op {
                AmoOp::Swap => "amoswap",
                AmoOp::Add => "amoadd",
                AmoOp::Xor => "amoxor",
                AmoOp::And => "amoand",
                AmoOp::Or => "amoor",
            };
            format!("{m}.{} {rd}, {rs2}, ({rs1})", width_suffix(width))
        }
        I::SpmFetch { rd, rs1, imm } => format!("spm.fetch {rd}, {rs1}, {imm}"),
        I::SpmFlush { rd, rs1, imm } => format!("spm.flush {rd}, {rs1}, {imm}"),
    }
}

/// Disassemble a program image into one line per word; undecodable words
/// render as `.word 0x...`.
pub fn disassemble_image(image: &[u8]) -> Vec<String> {
    image
        .chunks(4)
        .map(|c| {
            let mut w = [0u8; 4];
            w[..c.len()].copy_from_slice(c);
            let word = u32::from_le_bytes(w);
            match crate::decode::decode(word) {
                Some(ins) => disassemble(ins),
                None => format!(".word {word:#010x}"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::decode::decode;
    use crate::isa::Reg;

    #[test]
    fn known_instructions_render() {
        assert_eq!(
            disassemble(Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg(10),
                rs1: Reg(0),
                imm: 5
            }),
            "addi x10, x0, 5"
        );
        assert_eq!(
            disassemble(Instruction::Load {
                rd: Reg(5),
                rs1: Reg(2),
                offset: -8,
                width: Width::D,
                signed: true
            }),
            "ld x5, -8(x2)"
        );
        assert_eq!(disassemble(Instruction::Fence), "fence");
        assert_eq!(
            disassemble(Instruction::Amo {
                op: AmoOp::Add,
                rd: Reg(3),
                rs1: Reg(4),
                rs2: Reg(5),
                width: Width::D
            }),
            "amoadd.d x3, x5, (x4)"
        );
    }

    #[test]
    fn disassembly_reassembles_to_the_same_words() {
        // A program exercising most instruction classes.
        let src = r#"
            addi a0, x0, 100
            lui a1, 74565
            ld a2, 8(a0)
            sd a2, -16(sp)
            lbu a3, 3(a0)
            mul a4, a2, a3
            divu a5, a4, a2
            sraw a6, a4, a2
            beq a0, a1, 16
            bltu a2, a3, -8
            jalr ra, 4(a0)
            lr.d t0, (a0)
            sc.w t1, t0, (a0)
            amoswap.d t2, t0, (a0)
            spm.fetch t3, a0, 256
            spm.flush t4, a1, 64
            fence
            ecall
        "#;
        let image = assemble(src).unwrap();
        let listing = disassemble_image(&image).join("\n");
        let image2 = assemble(&listing).unwrap();
        assert_eq!(image, image2, "disasm -> asm round trip");
    }

    #[test]
    fn image_round_trip_per_word() {
        let src = "add a0, a1, a2\nsubw t0, t1, t2\nsltiu s1, s2, 47\n";
        let image = assemble(src).unwrap();
        for (chunk, line) in image.chunks(4).zip(disassemble_image(&image)) {
            let word = u32::from_le_bytes(chunk.try_into().unwrap());
            let ins = decode(word).unwrap();
            assert_eq!(disassemble(ins), line);
        }
    }

    #[test]
    fn undecodable_words_render_as_data() {
        let lines = disassemble_image(&0xFFFF_FFFFu32.to_le_bytes());
        assert_eq!(lines, vec![".word 0xffffffff".to_string()]);
    }
}
