//! Decoded instruction forms and register names.

/// A register index `x0..x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-address register (`ra`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`sp`).
    pub const SP: Reg = Reg(2);

    /// Parse a register name: `x7`, or an ABI name like `a0`, `t3`, `s5`.
    pub fn parse(s: &str) -> Option<Reg> {
        let abi = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        if let Some(i) = abi.iter().position(|&n| n == s) {
            return Some(Reg(i as u8));
        }
        if s == "fp" {
            return Some(Reg(8));
        }
        let n: u8 = s.strip_prefix('x')?.parse().ok()?;
        (n < 32).then_some(Reg(n))
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// Byte.
    B = 1,
    /// Half-word (16-bit).
    H = 2,
    /// Word (32-bit).
    W = 4,
    /// Double-word (64-bit).
    D = 8,
}

/// Register-register ALU operations (OP / OP-32 / M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add` — wrapping addition.
    Add,
    /// `sub` — wrapping subtraction.
    Sub,
    /// `sll` — shift left logical.
    Sll,
    /// `slt` — set if less than (signed).
    Slt,
    /// `sltu` — set if less than (unsigned).
    Sltu,
    /// `xor`.
    Xor,
    /// `srl` — shift right logical.
    Srl,
    /// `sra` — shift right arithmetic.
    Sra,
    /// `or`.
    Or,
    /// `and`.
    And,
    /// `addw` — 32-bit add, sign-extended.
    Addw,
    /// `subw` — 32-bit subtract, sign-extended.
    Subw,
    /// `sllw` — 32-bit shift left.
    Sllw,
    /// `srlw` — 32-bit shift right logical.
    Srlw,
    /// `sraw` — 32-bit shift right arithmetic.
    Sraw,
    /// `mul` — low 64 bits of the product.
    Mul,
    /// `mulh` — high bits, signed × signed.
    Mulh,
    /// `mulhsu` — high bits, signed × unsigned.
    Mulhsu,
    /// `mulhu` — high bits, unsigned × unsigned.
    Mulhu,
    /// `div` — signed division.
    Div,
    /// `divu` — unsigned division.
    Divu,
    /// `rem` — signed remainder.
    Rem,
    /// `remu` — unsigned remainder.
    Remu,
    /// `mulw` — 32-bit multiply, sign-extended.
    Mulw,
    /// `divw` — 32-bit signed division.
    Divw,
    /// `divuw` — 32-bit unsigned division.
    Divuw,
    /// `remw` — 32-bit signed remainder.
    Remw,
    /// `remuw` — 32-bit unsigned remainder.
    Remuw,
}

/// Register-immediate ALU operations (OP-IMM / OP-IMM-32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `addi`.
    Addi,
    /// `slti` — set if less than immediate (signed).
    Slti,
    /// `sltiu` — set if less than immediate (unsigned).
    Sltiu,
    /// `xori`.
    Xori,
    /// `ori`.
    Ori,
    /// `andi`.
    Andi,
    /// `slli` — shift left by immediate.
    Slli,
    /// `srli` — logical shift right by immediate.
    Srli,
    /// `srai` — arithmetic shift right by immediate.
    Srai,
    /// `addiw` — 32-bit add immediate, sign-extended.
    Addiw,
    /// `slliw` — 32-bit shift left.
    Slliw,
    /// `srliw` — 32-bit logical shift right.
    Srliw,
    /// `sraiw` — 32-bit arithmetic shift right.
    Sraiw,
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq` — equal.
    Eq,
    /// `bne` — not equal.
    Ne,
    /// `blt` — less than (signed).
    Lt,
    /// `bge` — greater or equal (signed).
    Ge,
    /// `bltu` — less than (unsigned).
    Ltu,
    /// `bgeu` — greater or equal (unsigned).
    Geu,
}

/// Atomic memory operations (A extension subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// `amoswap` — exchange.
    Swap,
    /// `amoadd` — fetch-and-add.
    Add,
    /// `amoxor` — fetch-and-xor.
    Xor,
    /// `amoand` — fetch-and-and.
    And,
    /// `amoor` — fetch-and-or.
    Or,
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `lui rd, imm20`
    Lui {
        /// Destination register.
        rd: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `auipc rd, imm20`
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `jal rd, offset`
    Jal {
        /// Destination register.
        rd: Reg,
        /// Byte offset (branch/jump target or memory displacement).
        offset: i64,
    },
    /// `jalr rd, rs1, offset`
    Jalr {
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Byte offset (branch/jump target or memory displacement).
        offset: i64,
    },
    /// Conditional branch.
    Branch {
        /// Operation selector.
        op: BranchOp,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Second source register (store/AMO data).
        rs2: Reg,
        /// Byte offset (branch/jump target or memory displacement).
        offset: i64,
    },
    /// Load from memory; `signed` distinguishes LB/LBU etc.
    Load {
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Byte offset (branch/jump target or memory displacement).
        offset: i64,
        /// Access width.
        width: Width,
        /// Sign-extend the loaded value (LB/LH/LW vs LBU/LHU/LWU).
        signed: bool,
    },
    /// Store to memory.
    Store {
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Second source register (store/AMO data).
        rs2: Reg,
        /// Byte offset (branch/jump target or memory displacement).
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Register-immediate ALU.
    AluImm {
        /// Operation selector.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Register-register ALU.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Second source register (store/AMO data).
        rs2: Reg,
    },
    /// Memory fence.
    Fence,
    /// Environment call — halts the hart in this simulator.
    Ecall,
    /// `lr.w/.d rd, (rs1)`
    LoadReserved {
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Access width.
        width: Width,
    },
    /// `sc.w/.d rd, rs2, (rs1)`
    StoreConditional {
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Second source register (store/AMO data).
        rs2: Reg,
        /// Access width.
        width: Width,
    },
    /// `amoOP.w/.d rd, rs2, (rs1)`
    Amo {
        /// Operation selector.
        op: AmoOp,
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Second source register (store/AMO data).
        rs2: Reg,
        /// Access width.
        width: Width,
    },
    /// Custom-0: `spm.fetch rd, rs1, imm` — copy `imm` bytes from main
    /// memory at `[rs1]` into the scratchpad at `[rd]` (paper §5.1's SPM
    /// prefetch extension).
    SpmFetch {
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Custom-0: `spm.flush rd, rs1, imm` — copy `imm` bytes from the
    /// scratchpad at `[rs1]` back to main memory at `[rd]` (write-back).
    SpmFlush {
        /// Destination register.
        rd: Reg,
        /// First source register (base address for memory forms).
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_parsing_accepts_both_name_spaces() {
        assert_eq!(Reg::parse("x0"), Some(Reg(0)));
        assert_eq!(Reg::parse("x31"), Some(Reg(31)));
        assert_eq!(Reg::parse("zero"), Some(Reg(0)));
        assert_eq!(Reg::parse("ra"), Some(Reg(1)));
        assert_eq!(Reg::parse("sp"), Some(Reg(2)));
        assert_eq!(Reg::parse("a0"), Some(Reg(10)));
        assert_eq!(Reg::parse("a7"), Some(Reg(17)));
        assert_eq!(Reg::parse("t6"), Some(Reg(31)));
        assert_eq!(Reg::parse("s11"), Some(Reg(27)));
        assert_eq!(Reg::parse("fp"), Some(Reg(8)));
    }

    #[test]
    fn reg_parsing_rejects_junk() {
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("y1"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(Reg::parse("a8"), None);
    }

    #[test]
    fn widths_are_byte_counts() {
        assert_eq!(Width::B as u64, 1);
        assert_eq!(Width::H as u64, 2);
        assert_eq!(Width::W as u64, 4);
        assert_eq!(Width::D as u64, 8);
    }
}
