//! Decoded instruction forms and register names.

/// A register index `x0..x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-address register (`ra`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`sp`).
    pub const SP: Reg = Reg(2);

    /// Parse a register name: `x7`, or an ABI name like `a0`, `t3`, `s5`.
    pub fn parse(s: &str) -> Option<Reg> {
        let abi = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        if let Some(i) = abi.iter().position(|&n| n == s) {
            return Some(Reg(i as u8));
        }
        if s == "fp" {
            return Some(Reg(8));
        }
        let n: u8 = s.strip_prefix('x')?.parse().ok()?;
        (n < 32).then_some(Reg(n))
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    B = 1,
    H = 2,
    W = 4,
    D = 8,
}

/// Register-register ALU operations (OP / OP-32 / M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

/// Register-immediate ALU operations (OP-IMM / OP-IMM-32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Atomic memory operations (A extension subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    Swap,
    Add,
    Xor,
    And,
    Or,
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `lui rd, imm20`
    Lui { rd: Reg, imm: i64 },
    /// `auipc rd, imm20`
    Auipc { rd: Reg, imm: i64 },
    /// `jal rd, offset`
    Jal { rd: Reg, offset: i64 },
    /// `jalr rd, rs1, offset`
    Jalr { rd: Reg, rs1: Reg, offset: i64 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        offset: i64,
    },
    /// Load from memory; `signed` distinguishes LB/LBU etc.
    Load {
        rd: Reg,
        rs1: Reg,
        offset: i64,
        width: Width,
        signed: bool,
    },
    /// Store to memory.
    Store {
        rs1: Reg,
        rs2: Reg,
        offset: i64,
        width: Width,
    },
    /// Register-immediate ALU.
    AluImm {
        op: AluImmOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    },
    /// Register-register ALU.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Memory fence.
    Fence,
    /// Environment call — halts the hart in this simulator.
    Ecall,
    /// `lr.w/.d rd, (rs1)`
    LoadReserved { rd: Reg, rs1: Reg, width: Width },
    /// `sc.w/.d rd, rs2, (rs1)`
    StoreConditional {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        width: Width,
    },
    /// `amoOP.w/.d rd, rs2, (rs1)`
    Amo {
        op: AmoOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        width: Width,
    },
    /// Custom-0: `spm.fetch rd, rs1, imm` — copy `imm` bytes from main
    /// memory at `[rs1]` into the scratchpad at `[rd]` (paper §5.1's SPM
    /// prefetch extension).
    SpmFetch { rd: Reg, rs1: Reg, imm: i64 },
    /// Custom-0: `spm.flush rd, rs1, imm` — copy `imm` bytes from the
    /// scratchpad at `[rs1]` back to main memory at `[rd]` (write-back).
    SpmFlush { rd: Reg, rs1: Reg, imm: i64 },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_parsing_accepts_both_name_spaces() {
        assert_eq!(Reg::parse("x0"), Some(Reg(0)));
        assert_eq!(Reg::parse("x31"), Some(Reg(31)));
        assert_eq!(Reg::parse("zero"), Some(Reg(0)));
        assert_eq!(Reg::parse("ra"), Some(Reg(1)));
        assert_eq!(Reg::parse("sp"), Some(Reg(2)));
        assert_eq!(Reg::parse("a0"), Some(Reg(10)));
        assert_eq!(Reg::parse("a7"), Some(Reg(17)));
        assert_eq!(Reg::parse("t6"), Some(Reg(31)));
        assert_eq!(Reg::parse("s11"), Some(Reg(27)));
        assert_eq!(Reg::parse("fp"), Some(Reg(8)));
    }

    #[test]
    fn reg_parsing_rejects_junk() {
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("y1"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(Reg::parse("a8"), None);
    }

    #[test]
    fn widths_are_byte_counts() {
        assert_eq!(Width::B as u64, 1);
        assert_eq!(Width::H as u64, 2);
        assert_eq!(Width::W as u64, 4);
        assert_eq!(Width::D as u64, 8);
    }
}
