//! The hart: fetch/decode/execute with memory-trace capture.
//!
//! Each [`Cpu`] owns its architectural state and a private scratchpad
//! (SPM) region, mirroring the paper's node architecture (§3): SPM
//! accesses are local (1 ns, untraced); everything else goes to main
//! memory and emits a [`MemEvent`] for the MAC pipeline downstream.

use crate::decode::decode;
use crate::isa::{AluImmOp, AluOp, AmoOp, BranchOp, Instruction, Reg, Width};
use crate::trace::{MemEvent, MemEventKind};

/// Byte-addressable main memory as seen by a hart.
pub trait Memory {
    /// Read `buf.len()` bytes at `addr`.
    fn read(&mut self, addr: u64, buf: &mut [u8]);
    /// Write `buf` at `addr`.
    fn write(&mut self, addr: u64, buf: &[u8]);
    /// Out-of-range accesses observed so far. The CPU samples this around
    /// each access to turn silent zero-fill/drop into a deterministic
    /// [`TrapKind::OutOfRange`] guest trap. Backings without bounds
    /// return 0 forever (never trap).
    fn fault_count(&self) -> u64 {
        0
    }
}

/// Flat `Vec<u8>`-backed memory, usable for programs and data.
///
/// Out-of-range accesses do not panic: reads return zeros, writes are
/// dropped, and both bump [`FlatMemory::faults`] so harnesses can detect
/// runaway programs.
#[derive(Debug, Clone)]
pub struct FlatMemory {
    bytes: Vec<u8>,
    /// Out-of-range accesses observed.
    pub faults: u64,
}

impl FlatMemory {
    /// Allocate `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        FlatMemory {
            bytes: vec![0; size],
            faults: 0,
        }
    }

    /// Copy a program image to `addr`. The portion (if any) that falls
    /// outside the backing store is dropped and counted as one fault —
    /// loaders are expected to size memory up front, but a bad image must
    /// never panic the host.
    pub fn load_image(&mut self, addr: u64, image: &[u8]) {
        let a = addr as usize;
        match self.bytes.get_mut(a..a.saturating_add(image.len())) {
            Some(dst) => dst.copy_from_slice(image),
            None => {
                let fit = self.bytes.len().saturating_sub(a).min(image.len());
                if fit > 0 {
                    self.bytes[a..a + fit].copy_from_slice(&image[..fit]);
                }
                self.faults += 1;
            }
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Memory for FlatMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let a = addr as usize;
        match a
            .checked_add(buf.len())
            .and_then(|end| self.bytes.get(a..end))
        {
            Some(src) => buf.copy_from_slice(src),
            None => {
                buf.fill(0);
                self.faults += 1;
            }
        }
    }
    fn write(&mut self, addr: u64, buf: &[u8]) {
        let a = addr as usize;
        let end = a.checked_add(buf.len());
        match end.and_then(|e| self.bytes.get_mut(a..e)) {
            Some(dst) => dst.copy_from_slice(buf),
            None => self.faults += 1,
        }
    }
    fn fault_count(&self) -> u64 {
        self.faults
    }
}

/// Why a hart trapped (deterministic guest-visible reason codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// The fetched word does not decode.
    IllegalInstruction = 1,
    /// A load/store/atomic address is not aligned to its access width.
    MisalignedAccess = 2,
    /// The access fell outside the backing memory.
    OutOfRange = 3,
    /// `spm.fetch`/`spm.flush` named a scratchpad range that is not one.
    SpmRange = 4,
}

/// A trap record: what went wrong, where, and the offending address (or
/// instruction word for [`TrapKind::IllegalInstruction`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Trap {
    /// Reason code.
    pub kind: TrapKind,
    /// PC of the faulting instruction.
    pub pc: u64,
    /// Faulting address, or the undecodable instruction word.
    pub info: u64,
}

impl Trap {
    /// Stable numeric reason code for reports.
    pub fn code(&self) -> u32 {
        self.kind as u32
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            TrapKind::IllegalInstruction => {
                write!(
                    f,
                    "illegal instruction {:#010x} at {:#x}",
                    self.info, self.pc
                )
            }
            TrapKind::MisalignedAccess => {
                write!(f, "misaligned access {:#x} at {:#x}", self.info, self.pc)
            }
            TrapKind::OutOfRange => {
                write!(f, "out-of-range access {:#x} at {:#x}", self.info, self.pc)
            }
            TrapKind::SpmRange => {
                write!(
                    f,
                    "address {:#x} not in scratchpad at {:#x}",
                    self.info, self.pc
                )
            }
        }
    }
}

/// Result of executing one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecResult {
    /// Keep going.
    Continue,
    /// `ecall` executed — the hart halted.
    Halted,
    /// Illegal instruction, misaligned access, or out-of-range access.
    Trap(Trap),
}

/// Default SPM window base in the hart's address space.
pub const SPM_BASE: u64 = 0xFFFF_0000;

/// One RV64 hart with a private scratchpad.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Architectural registers; `x0` reads as zero.
    pub regs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// Scratchpad contents.
    spm: Vec<u8>,
    spm_base: u64,
    /// LR/SC reservation.
    reservation: Option<u64>,
    /// Retired instruction count.
    pub retired: u64,
    halted: bool,
}

impl Cpu {
    /// Create a hart with `spm_bytes` of scratchpad at the default base,
    /// starting at `pc`.
    pub fn new(pc: u64, spm_bytes: usize) -> Self {
        Cpu {
            regs: [0; 32],
            pc,
            spm: vec![0; spm_bytes],
            spm_base: SPM_BASE,
            reservation: None,
            retired: 0,
            halted: false,
        }
    }

    /// Whether the hart has executed `ecall`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Resume after an `ecall` halt: clears the halt latch and advances
    /// the PC past the `ecall`. A guest runtime services the call (the
    /// selector/arguments are in the registers, which `step` left
    /// untouched) and then resumes the hart. No-op when not halted.
    pub fn resume(&mut self) {
        if self.halted {
            self.halted = false;
            self.pc = self.pc.wrapping_add(4);
        }
    }

    /// Read a register (`x0` is always zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Write a register (writes to `x0` are ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// The scratchpad base address of this hart.
    pub fn spm_base(&self) -> u64 {
        self.spm_base
    }

    fn in_spm(&self, addr: u64, len: u64) -> bool {
        let Some(end) = addr.checked_add(len) else {
            return false;
        };
        addr >= self.spm_base && end <= self.spm_base + self.spm.len() as u64
    }

    /// Misaligned naturally-sized accesses are deterministic guest traps
    /// (the simulated SoC has no hardware misalignment support).
    fn check_aligned(addr: u64, len: u64, pc: u64) -> Result<(), Trap> {
        if len > 1 && !addr.is_multiple_of(len) {
            return Err(Trap {
                kind: TrapKind::MisalignedAccess,
                pc,
                info: addr,
            });
        }
        Ok(())
    }

    fn mem_read(
        &mut self,
        mem: &mut impl Memory,
        addr: u64,
        buf: &mut [u8],
        pc: u64,
    ) -> Result<(), Trap> {
        if self.in_spm(addr, buf.len() as u64) {
            let o = (addr - self.spm_base) as usize;
            buf.copy_from_slice(&self.spm[o..o + buf.len()]);
            Ok(())
        } else {
            let before = mem.fault_count();
            mem.read(addr, buf);
            if mem.fault_count() != before {
                return Err(Trap {
                    kind: TrapKind::OutOfRange,
                    pc,
                    info: addr,
                });
            }
            Ok(())
        }
    }

    fn mem_write(
        &mut self,
        mem: &mut impl Memory,
        addr: u64,
        buf: &[u8],
        pc: u64,
    ) -> Result<(), Trap> {
        if self.in_spm(addr, buf.len() as u64) {
            let o = (addr - self.spm_base) as usize;
            self.spm[o..o + buf.len()].copy_from_slice(buf);
            Ok(())
        } else {
            let before = mem.fault_count();
            mem.write(addr, buf);
            if mem.fault_count() != before {
                return Err(Trap {
                    kind: TrapKind::OutOfRange,
                    pc,
                    info: addr,
                });
            }
            Ok(())
        }
    }

    /// Execute one instruction, appending any main-memory trace events to
    /// `events`.
    pub fn step(&mut self, mem: &mut impl Memory, events: &mut Vec<MemEvent>) -> ExecResult {
        match self.try_step(mem, events) {
            Ok(r) => r,
            Err(t) => ExecResult::Trap(t),
        }
    }

    fn try_step(
        &mut self,
        mem: &mut impl Memory,
        events: &mut Vec<MemEvent>,
    ) -> Result<ExecResult, Trap> {
        if self.halted {
            return Ok(ExecResult::Halted);
        }
        Self::check_aligned(self.pc, 4, self.pc)?;
        let mut word_bytes = [0u8; 4];
        {
            let before = mem.fault_count();
            mem.read(self.pc, &mut word_bytes);
            if mem.fault_count() != before {
                return Err(Trap {
                    kind: TrapKind::OutOfRange,
                    pc: self.pc,
                    info: self.pc,
                });
            }
        }
        let word = u32::from_le_bytes(word_bytes);
        let Some(ins) = decode(word) else {
            return Err(Trap {
                kind: TrapKind::IllegalInstruction,
                pc: self.pc,
                info: word as u64,
            });
        };
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);

        use Instruction as I;
        match ins {
            I::Lui { rd, imm } => self.set_reg(rd, imm as u64),
            I::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u64)),
            I::Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as u64);
            }
            I::Jalr { rd, rs1, offset } => {
                let t = self.reg(rs1).wrapping_add(offset as u64) & !1;
                self.set_reg(rd, next_pc);
                next_pc = t;
            }
            I::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i64) < (b as i64),
                    BranchOp::Ge => (a as i64) >= (b as i64),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as u64);
                }
            }
            I::Load {
                rd,
                rs1,
                offset,
                width,
                signed,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                let n = width as usize;
                Self::check_aligned(addr, n as u64, pc)?;
                let mut buf = [0u8; 8];
                self.mem_read(mem, addr, &mut buf[..n], pc)?;
                let raw = u64::from_le_bytes(buf);
                let val = if signed {
                    match width {
                        Width::B => buf[0] as i8 as i64 as u64,
                        Width::H => i16::from_le_bytes([buf[0], buf[1]]) as i64 as u64,
                        Width::W => i32::from_le_bytes(buf[..4].try_into().unwrap()) as i64 as u64,
                        Width::D => raw,
                    }
                } else {
                    raw
                };
                self.set_reg(rd, val);
                if !self.in_spm(addr, n as u64) {
                    events.push(MemEvent {
                        addr,
                        kind: MemEventKind::Load,
                        bytes: n as u8,
                        pc,
                    });
                }
            }
            I::Store {
                rs1,
                rs2,
                offset,
                width,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                let n = width as usize;
                Self::check_aligned(addr, n as u64, pc)?;
                let bytes = self.reg(rs2).to_le_bytes();
                self.mem_write(mem, addr, &bytes[..n], pc)?;
                if !self.in_spm(addr, n as u64) {
                    events.push(MemEvent {
                        addr,
                        kind: MemEventKind::Store,
                        bytes: n as u8,
                        pc,
                    });
                }
            }
            I::AluImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                use AluImmOp::*;
                let v = match op {
                    Addi => a.wrapping_add(imm as u64),
                    Slti => ((a as i64) < imm) as u64,
                    Sltiu => (a < imm as u64) as u64,
                    Xori => a ^ imm as u64,
                    Ori => a | imm as u64,
                    Andi => a & imm as u64,
                    Slli => a << (imm & 0x3F),
                    Srli => a >> (imm & 0x3F),
                    Srai => ((a as i64) >> (imm & 0x3F)) as u64,
                    Addiw => (a.wrapping_add(imm as u64) as i32) as i64 as u64,
                    Slliw => (((a as u32) << (imm & 0x1F)) as i32) as i64 as u64,
                    Srliw => (((a as u32) >> (imm & 0x1F)) as i32) as i64 as u64,
                    Sraiw => ((a as i32) >> (imm & 0x1F)) as i64 as u64,
                };
                self.set_reg(rd, v);
            }
            I::Alu { op, rd, rs1, rs2 } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                use AluOp::*;
                let v = match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Sll => a << (b & 0x3F),
                    Slt => ((a as i64) < (b as i64)) as u64,
                    Sltu => (a < b) as u64,
                    Xor => a ^ b,
                    Srl => a >> (b & 0x3F),
                    Sra => ((a as i64) >> (b & 0x3F)) as u64,
                    Or => a | b,
                    And => a & b,
                    Mul => a.wrapping_mul(b),
                    Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
                    Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
                    Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
                    Div => {
                        if b == 0 {
                            u64::MAX
                        } else {
                            ((a as i64).wrapping_div(b as i64)) as u64
                        }
                    }
                    Divu => a.checked_div(b).unwrap_or(u64::MAX),
                    Rem => {
                        if b == 0 {
                            a
                        } else {
                            ((a as i64).wrapping_rem(b as i64)) as u64
                        }
                    }
                    Remu => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                    Addw => (a.wrapping_add(b) as i32) as i64 as u64,
                    Subw => (a.wrapping_sub(b) as i32) as i64 as u64,
                    Sllw => (((a as u32) << (b & 0x1F)) as i32) as i64 as u64,
                    Srlw => (((a as u32) >> (b & 0x1F)) as i32) as i64 as u64,
                    Sraw => ((a as i32) >> (b & 0x1F)) as i64 as u64,
                    Mulw => (a.wrapping_mul(b) as i32) as i64 as u64,
                    Divw => {
                        let (a, b) = (a as i32, b as i32);
                        (if b == 0 { -1 } else { a.wrapping_div(b) }) as i64 as u64
                    }
                    Divuw => {
                        let (a, b) = (a as u32, b as u32);
                        (a.checked_div(b).unwrap_or(u32::MAX) as i32) as i64 as u64
                    }
                    Remw => {
                        let (a, b) = (a as i32, b as i32);
                        (if b == 0 { a } else { a.wrapping_rem(b) }) as i64 as u64
                    }
                    Remuw => {
                        let (a, b) = (a as u32, b as u32);
                        (if b == 0 { a as i32 } else { (a % b) as i32 }) as i64 as u64
                    }
                };
                self.set_reg(rd, v);
            }
            I::Fence => {
                events.push(MemEvent {
                    addr: 0,
                    kind: MemEventKind::Fence,
                    bytes: 0,
                    pc,
                });
            }
            I::Ecall => {
                self.halted = true;
                self.retired += 1;
                return Ok(ExecResult::Halted);
            }
            I::LoadReserved { rd, rs1, width } => {
                let addr = self.reg(rs1);
                let n = width as usize;
                Self::check_aligned(addr, n as u64, pc)?;
                let mut buf = [0u8; 8];
                self.mem_read(mem, addr, &mut buf[..n], pc)?;
                let v = if width == Width::W {
                    i32::from_le_bytes(buf[..4].try_into().unwrap()) as i64 as u64
                } else {
                    u64::from_le_bytes(buf)
                };
                self.set_reg(rd, v);
                self.reservation = Some(addr);
                events.push(MemEvent {
                    addr,
                    kind: MemEventKind::Atomic,
                    bytes: n as u8,
                    pc,
                });
            }
            I::StoreConditional {
                rd,
                rs1,
                rs2,
                width,
            } => {
                let addr = self.reg(rs1);
                let n = width as usize;
                Self::check_aligned(addr, n as u64, pc)?;
                if self.reservation == Some(addr) {
                    let bytes = self.reg(rs2).to_le_bytes();
                    self.mem_write(mem, addr, &bytes[..n], pc)?;
                    self.set_reg(rd, 0);
                    events.push(MemEvent {
                        addr,
                        kind: MemEventKind::Atomic,
                        bytes: n as u8,
                        pc,
                    });
                } else {
                    self.set_reg(rd, 1);
                }
                self.reservation = None;
            }
            I::Amo {
                op,
                rd,
                rs1,
                rs2,
                width,
            } => {
                let addr = self.reg(rs1);
                let n = width as usize;
                Self::check_aligned(addr, n as u64, pc)?;
                let mut buf = [0u8; 8];
                self.mem_read(mem, addr, &mut buf[..n], pc)?;
                let old = if width == Width::W {
                    i32::from_le_bytes(buf[..4].try_into().unwrap()) as i64 as u64
                } else {
                    u64::from_le_bytes(buf)
                };
                let b = self.reg(rs2);
                let new = match op {
                    AmoOp::Swap => b,
                    AmoOp::Add => old.wrapping_add(b),
                    AmoOp::Xor => old ^ b,
                    AmoOp::And => old & b,
                    AmoOp::Or => old | b,
                };
                let bytes = new.to_le_bytes();
                self.mem_write(mem, addr, &bytes[..n], pc)?;
                self.set_reg(rd, old);
                events.push(MemEvent {
                    addr,
                    kind: MemEventKind::Atomic,
                    bytes: n as u8,
                    pc,
                });
            }
            I::SpmFetch { rd, rs1, imm } => {
                // Copy `imm` bytes main[rs1] -> spm[rd], tracing one load
                // per 16 B FLIT (the MAC's request granularity).
                let src = self.reg(rs1);
                let dst = self.reg(rd);
                let len = (imm.max(0) as u64).min(4096);
                let mut buf = vec![0u8; len as usize];
                {
                    let before = mem.fault_count();
                    mem.read(src, &mut buf);
                    if mem.fault_count() != before {
                        return Err(Trap {
                            kind: TrapKind::OutOfRange,
                            pc,
                            info: src,
                        });
                    }
                }
                if !self.in_spm(dst, len) {
                    return Err(Trap {
                        kind: TrapKind::SpmRange,
                        pc,
                        info: dst,
                    });
                }
                let o = (dst - self.spm_base) as usize;
                self.spm[o..o + len as usize].copy_from_slice(&buf);
                let mut off = 0;
                while off < len {
                    events.push(MemEvent {
                        addr: src + off,
                        kind: MemEventKind::Load,
                        bytes: (len - off).min(16) as u8,
                        pc,
                    });
                    off += 16;
                }
            }
            I::SpmFlush { rd, rs1, imm } => {
                // Copy `imm` bytes spm[rs1] -> main[rd], one store/FLIT.
                let src = self.reg(rs1);
                let dst = self.reg(rd);
                let len = (imm.max(0) as u64).min(4096);
                if !self.in_spm(src, len) {
                    return Err(Trap {
                        kind: TrapKind::SpmRange,
                        pc,
                        info: src,
                    });
                }
                let o = (src - self.spm_base) as usize;
                let buf = self.spm[o..o + len as usize].to_vec();
                {
                    let before = mem.fault_count();
                    mem.write(dst, &buf);
                    if mem.fault_count() != before {
                        return Err(Trap {
                            kind: TrapKind::OutOfRange,
                            pc,
                            info: dst,
                        });
                    }
                }
                let mut off = 0;
                while off < len {
                    events.push(MemEvent {
                        addr: dst + off,
                        kind: MemEventKind::Store,
                        bytes: (len - off).min(16) as u8,
                        pc,
                    });
                    off += 16;
                }
            }
        }

        self.pc = next_pc;
        self.retired += 1;
        Ok(ExecResult::Continue)
    }

    /// Run until halt, trap, or `max_steps`; returns collected events.
    pub fn run(&mut self, mem: &mut impl Memory, max_steps: u64) -> (Vec<MemEvent>, ExecResult) {
        let mut events = Vec::new();
        for _ in 0..max_steps {
            match self.step(mem, &mut events) {
                ExecResult::Continue => {}
                r => return (events, r),
            }
        }
        (events, ExecResult::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_asm(src: &str) -> (Cpu, Vec<MemEvent>) {
        let image = assemble(src).expect("assembles");
        let mut mem = FlatMemory::new(1 << 20);
        mem.load_image(0, &image);
        let mut cpu = Cpu::new(0, 64 << 10);
        let (events, result) = cpu.run(&mut mem, 1_000_000);
        assert_eq!(result, ExecResult::Halted, "program must halt via ecall");
        (cpu, events)
    }

    #[test]
    fn arithmetic_loop_sums_one_to_ten() {
        let (cpu, events) = run_asm(
            r#"
            li a0, 0        # sum
            li a1, 1        # i
            li a2, 11
        loop:
            add a0, a0, a1
            addi a1, a1, 1
            bne a1, a2, loop
            ecall
            "#,
        );
        assert_eq!(cpu.reg(Reg(10)), 55);
        assert!(events.is_empty(), "pure ALU code traces nothing");
    }

    #[test]
    fn loads_and_stores_trace_main_memory() {
        let (cpu, events) = run_asm(
            r#"
            li a0, 0x1000
            li a1, 42
            sd a1, 0(a0)
            ld a2, 0(a0)
            ecall
            "#,
        );
        assert_eq!(cpu.reg(Reg(12)), 42);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, MemEventKind::Store);
        assert_eq!(events[1].kind, MemEventKind::Load);
        assert_eq!(events[0].addr, 0x1000);
        assert_eq!(events[1].bytes, 8);
    }

    #[test]
    fn spm_accesses_do_not_trace() {
        let (cpu, events) = run_asm(&format!(
            r#"
            li a0, {SPM_BASE}
            li a1, 7
            sd a1, 8(a0)
            ld a2, 8(a0)
            ecall
            "#
        ));
        assert_eq!(cpu.reg(Reg(12)), 7);
        assert!(events.is_empty(), "SPM traffic is node-local");
    }

    #[test]
    fn spm_fetch_copies_and_traces_per_flit() {
        let (cpu, events) = run_asm(&format!(
            r#"
            li a0, 0x2000
            li a1, 99
            sd a1, 0(a0)
            sd a1, 56(a0)
            li a2, {SPM_BASE}
            spm.fetch a2, a0, 64
            ld a3, 0(a2)
            ld a4, 56(a2)
            ecall
            "#
        ));
        assert_eq!(cpu.reg(Reg(13)), 99);
        assert_eq!(cpu.reg(Reg(14)), 99);
        // 2 stores + 4 FLIT loads for the 64 B fetch; SPM reads untraced.
        let loads = events
            .iter()
            .filter(|e| e.kind == MemEventKind::Load)
            .count();
        assert_eq!(loads, 4);
    }

    #[test]
    fn spm_flush_writes_back() {
        let (_, events) = run_asm(&format!(
            r#"
            li a0, {SPM_BASE}
            li a1, 5
            sd a1, 0(a0)
            li a2, 0x3000
            spm.flush a2, a0, 32
            ecall
            "#
        ));
        let stores = events
            .iter()
            .filter(|e| e.kind == MemEventKind::Store)
            .count();
        assert_eq!(stores, 2, "32 B = 2 FLIT stores");
        assert_eq!(events[0].addr, 0x3000);
    }

    #[test]
    fn amoadd_is_atomic_rmw() {
        let (cpu, events) = run_asm(
            r#"
            li a0, 0x4000
            li a1, 10
            sd a1, 0(a0)
            li a2, 32
            amoadd.d a3, a2, (a0)
            ld a4, 0(a0)
            ecall
            "#,
        );
        assert_eq!(cpu.reg(Reg(13)), 10, "amo returns old value");
        assert_eq!(cpu.reg(Reg(14)), 42);
        assert!(events.iter().any(|e| e.kind == MemEventKind::Atomic));
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let (cpu, _) = run_asm(
            r#"
            li a0, 0x5000
            li a1, 7
            sd a1, 0(a0)
            lr.d a2, (a0)
            addi a2, a2, 1
            sc.d a3, a2, (a0)     # succeeds: a3 = 0
            sc.d a4, a2, (a0)     # fails (no reservation): a4 = 1
            ld a5, 0(a0)
            ecall
            "#,
        );
        assert_eq!(cpu.reg(Reg(13)), 0);
        assert_eq!(cpu.reg(Reg(14)), 1);
        assert_eq!(cpu.reg(Reg(15)), 8);
    }

    #[test]
    fn fence_traces_a_fence_event() {
        let (_, events) = run_asm("fence\necall\n");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, MemEventKind::Fence);
    }

    #[test]
    fn signed_narrow_loads_sign_extend() {
        let (cpu, _) = run_asm(
            r#"
            li a0, 0x6000
            li a1, -1
            sw a1, 0(a0)
            lw a2, 0(a0)      # sign-extends
            lwu a3, 0(a0)     # zero-extends
            ecall
            "#,
        );
        assert_eq!(cpu.reg(Reg(12)), u64::MAX);
        assert_eq!(cpu.reg(Reg(13)), 0xFFFF_FFFF);
    }

    #[test]
    fn mul_div_semantics() {
        let (cpu, _) = run_asm(
            r#"
            li a0, -6
            li a1, 4
            mul a2, a0, a1
            div a3, a0, a1
            rem a4, a0, a1
            divu a5, a0, a1
            ecall
            "#,
        );
        assert_eq!(cpu.reg(Reg(12)) as i64, -24);
        assert_eq!(cpu.reg(Reg(13)) as i64, -1);
        assert_eq!(cpu.reg(Reg(14)) as i64, -2);
        assert_eq!(cpu.reg(Reg(15)), (-6i64 as u64) / 4);
    }

    #[test]
    fn trap_on_illegal_instruction() {
        let mut mem = FlatMemory::new(4096);
        mem.load_image(0, &0xFFFF_FFFFu32.to_le_bytes());
        let mut cpu = Cpu::new(0, 1024);
        let mut ev = Vec::new();
        assert!(matches!(cpu.step(&mut mem, &mut ev), ExecResult::Trap(_)));
    }

    #[test]
    fn out_of_range_access_faults_instead_of_panicking() {
        let mut mem = FlatMemory::new(64);
        let mut buf = [0u8; 8];
        mem.read(1_000_000, &mut buf);
        assert_eq!(buf, [0u8; 8]);
        mem.write(1_000_000, &buf);
        assert_eq!(mem.faults, 2);
        // In-range accesses don't fault.
        mem.write(0, &buf);
        assert_eq!(mem.faults, 2);
    }

    #[test]
    fn misaligned_access_traps_with_reason_code() {
        let image = assemble("li a0, 0x1001\nld a1, 0(a0)\necall\n").unwrap();
        let mut mem = FlatMemory::new(1 << 16);
        mem.load_image(0, &image);
        let mut cpu = Cpu::new(0, 64);
        let (_, r) = cpu.run(&mut mem, 100);
        match r {
            ExecResult::Trap(t) => {
                assert_eq!(t.kind, TrapKind::MisalignedAccess);
                assert_eq!(t.info, 0x1001);
                assert_eq!(t.code(), 2);
            }
            other => panic!("expected misaligned trap, got {other:?}"),
        }
    }

    #[test]
    fn misaligned_store_and_amo_trap() {
        for src in [
            "li a0, 0x1002\nsd a1, 0(a0)\necall\n",
            "li a0, 0x1004\namoadd.d a1, a2, (a0)\necall\n",
        ] {
            let image = assemble(src).unwrap();
            let mut mem = FlatMemory::new(1 << 16);
            mem.load_image(0, &image);
            let mut cpu = Cpu::new(0, 64);
            let (_, r) = cpu.run(&mut mem, 100);
            assert!(
                matches!(r, ExecResult::Trap(t) if t.kind == TrapKind::MisalignedAccess),
                "{src}: {r:?}"
            );
        }
    }

    #[test]
    fn out_of_range_guest_access_traps_instead_of_zero_fill() {
        let image = assemble("li a0, 0x100000\nld a1, 0(a0)\necall\n").unwrap();
        let mut mem = FlatMemory::new(4096);
        mem.load_image(0, &image);
        let mut cpu = Cpu::new(0, 64);
        let (_, r) = cpu.run(&mut mem, 100);
        match r {
            ExecResult::Trap(t) => {
                assert_eq!(t.kind, TrapKind::OutOfRange);
                assert_eq!(t.info, 0x100000);
                assert_eq!(t.code(), 3);
            }
            other => panic!("expected out-of-range trap, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_fetch_traps() {
        // Jump far past the end of a tiny memory.
        let image = assemble("li a0, 0x10000\njr a0\n").unwrap();
        let mut mem = FlatMemory::new(4096);
        mem.load_image(0, &image);
        let mut cpu = Cpu::new(0, 64);
        let (_, r) = cpu.run(&mut mem, 100);
        assert!(matches!(r, ExecResult::Trap(t) if t.kind == TrapKind::OutOfRange));
    }

    #[test]
    fn load_image_out_of_range_faults_instead_of_panicking() {
        let mut mem = FlatMemory::new(8);
        mem.load_image(4, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(mem.faults, 1);
        let mut buf = [0u8; 4];
        mem.read(4, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4], "in-range prefix still copied");
        // Entirely out of range: dropped, counted.
        mem.load_image(1 << 40, &[9]);
        assert_eq!(mem.faults, 2);
    }

    #[test]
    fn resume_after_ecall_continues_past_the_call() {
        let image = assemble("li a0, 1\necall\nli a0, 2\necall\n").unwrap();
        let mut mem = FlatMemory::new(4096);
        mem.load_image(0, &image);
        let mut cpu = Cpu::new(0, 64);
        let (_, r) = cpu.run(&mut mem, 100);
        assert_eq!(r, ExecResult::Halted);
        assert_eq!(cpu.reg(Reg(10)), 1);
        assert!(cpu.halted());
        cpu.resume();
        assert!(!cpu.halted());
        let (_, r) = cpu.run(&mut mem, 100);
        assert_eq!(r, ExecResult::Halted);
        assert_eq!(cpu.reg(Reg(10)), 2, "execution continued past the ecall");
    }

    #[test]
    fn spm_window_near_address_space_top_does_not_overflow() {
        // `in_spm` with addr + len overflowing u64 must be false, not panic.
        let mut mem = FlatMemory::new(4096);
        let image = assemble("li a0, -8\nld a1, 0(a0)\necall\n").unwrap();
        mem.load_image(0, &image);
        let mut cpu = Cpu::new(0, 64);
        let (_, r) = cpu.run(&mut mem, 100);
        assert!(matches!(r, ExecResult::Trap(t) if t.kind == TrapKind::OutOfRange));
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (cpu, _) = run_asm(
            r#"
            li a0, 5
            add x0, a0, a0
            add a1, x0, x0
            ecall
            "#,
        );
        assert_eq!(cpu.reg(Reg(0)), 0);
        assert_eq!(cpu.reg(Reg(11)), 0);
    }
}
