//! A two-pass RV64 assembler for the supported subset.
//!
//! Enough syntax to write the workloads and examples in readable
//! assembly: labels, `#` comments, the base/M/A-subset mnemonics, the
//! custom `spm.fetch`/`spm.flush` instructions, and the common pseudo-ops
//! (`li` with full 64-bit materialization, `mv`, `nop`, `j`, `jr`, `ret`,
//! `call`, `beqz`, `bnez`).

use crate::encode::encode;
use crate::isa::{AluImmOp, AluOp, AmoOp, BranchOp, Instruction, Reg, Width};

/// A parsed statement that may still reference a label.
///
/// The flat `assemble` entry point resolves labels itself; richer
/// front-ends (the `mac-guest` section-aware assembler) call
/// [`parse_line`] and perform their own layout/relocation over these
/// items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmItem {
    /// A fully-encoded instruction.
    Ready(Instruction),
    /// Branch to a label: (op, rs1, rs2, label).
    Branch(BranchOp, Reg, Reg, String),
    /// JAL to a label: (rd, label).
    Jal(Reg, String),
}

use AsmItem as Item;

/// Parse one instruction statement (mnemonic + operands, no label, no
/// comment) into items. Pseudo-ops may expand to several items (`li` up
/// to eight).
pub fn parse_line(line: &str) -> Result<Vec<AsmItem>, String> {
    let mut out = Vec::new();
    parse_instruction(line.trim(), &mut out)?;
    Ok(out)
}

/// Expand `li rd, value` as the assembler would, returning the
/// materialization sequence (used by front-ends to relax `la`).
pub fn li_items(rd: Reg, value: i64) -> Vec<Instruction> {
    let mut items = Vec::new();
    li_sequence(rd, value, &mut items);
    items
        .into_iter()
        .map(|i| match i {
            AsmItem::Ready(ins) => ins,
            _ => unreachable!("li expands to ready instructions only"),
        })
        .collect()
}

/// Assemble source text into a little-endian program image.
///
/// Returns `Err` with a line-numbered message on any syntax error or
/// out-of-range operand.
pub fn assemble(src: &str) -> Result<Vec<u8>, String> {
    let mut items: Vec<Item> = Vec::new();
    let mut labels: std::collections::HashMap<String, usize> = std::collections::HashMap::new();

    for (lineno, raw_line) in src.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}: `{line}`", lineno + 1);

        let mut rest = line;
        // Leading labels (possibly several on one line).
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label.to_string(), items.len()).is_some() {
                return Err(err(&format!("duplicate label `{label}`")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        parse_instruction(rest, &mut items).map_err(|m| err(&m))?;
    }

    // Pass 2: resolve label references.
    let mut words = Vec::with_capacity(items.len());
    for (idx, item) in items.iter().enumerate() {
        let ins = match item {
            Item::Ready(i) => *i,
            Item::Branch(op, rs1, rs2, label) => {
                let target = *labels
                    .get(label)
                    .ok_or(format!("undefined label `{label}`"))?;
                let offset = (target as i64 - idx as i64) * 4;
                Instruction::Branch {
                    op: *op,
                    rs1: *rs1,
                    rs2: *rs2,
                    offset,
                }
            }
            Item::Jal(rd, label) => {
                let target = *labels
                    .get(label)
                    .ok_or(format!("undefined label `{label}`"))?;
                let offset = (target as i64 - idx as i64) * 4;
                Instruction::Jal { rd: *rd, offset }
            }
        };
        words.push(encode(ins));
    }

    Ok(words.iter().flat_map(|w| w.to_le_bytes()).collect())
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16)
            .ok()
            .or_else(|| u64::from_str_radix(hex, 16).ok().map(|v| v as i64));
    }
    if let Some(hex) = s.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| -v);
    }
    s.parse::<i64>()
        .ok()
        .or_else(|| s.parse::<u64>().ok().map(|v| v as i64))
}

fn reg(s: &str) -> Result<Reg, String> {
    Reg::parse(s.trim()).ok_or_else(|| format!("bad register `{s}`"))
}

/// Parse `off(rs)` or `(rs)` memory operands.
fn mem_operand(s: &str) -> Result<(i64, Reg), String> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| format!("bad memory operand `{s}`"))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| format!("bad memory operand `{s}`"))?;
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        parse_int(off_str).ok_or("bad offset")?
    };
    Ok((off, reg(&s[open + 1..close])?))
}

/// Expand `li rd, value` into a minimal materialization sequence.
fn li_sequence(rd: Reg, v: i64, out: &mut Vec<Item>) {
    if (-2048..2048).contains(&v) {
        out.push(Item::Ready(Instruction::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1: Reg::ZERO,
            imm: v,
        }));
        return;
    }
    if v == (v as i32) as i64 {
        // lui + addiw covers the signed 32-bit range.
        let low = (v << 52) >> 52; // sign-extended low 12 bits
        let hi = v - low;
        out.push(Item::Ready(Instruction::Lui { rd, imm: hi }));
        if low != 0 {
            out.push(Item::Ready(Instruction::AluImm {
                op: AluImmOp::Addiw,
                rd,
                rs1: rd,
                imm: low,
            }));
        }
        return;
    }
    // General 64-bit: materialize the upper part, shift, add low 12 bits.
    let low = (v << 52) >> 52;
    let rest = (v - low) >> 12;
    li_sequence(rd, rest, out);
    out.push(Item::Ready(Instruction::AluImm {
        op: AluImmOp::Slli,
        rd,
        rs1: rd,
        imm: 12,
    }));
    if low != 0 {
        out.push(Item::Ready(Instruction::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1: rd,
            imm: low,
        }));
    }
}

fn parse_instruction(line: &str, out: &mut Vec<Item>) -> Result<(), String> {
    let (mnemonic, args) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let ops: Vec<&str> = if args.is_empty() {
        Vec::new()
    } else {
        args.split(',').map(str::trim).collect()
    };
    let n = ops.len();
    let need = |k: usize| -> Result<(), String> {
        if n == k {
            Ok(())
        } else {
            Err(format!("expected {k} operands, got {n}"))
        }
    };
    use Instruction as I;

    let alu3 = |op: AluOp, ops: &[&str]| -> Result<Item, String> {
        Ok(Item::Ready(I::Alu {
            op,
            rd: reg(ops[0])?,
            rs1: reg(ops[1])?,
            rs2: reg(ops[2])?,
        }))
    };
    let alu_imm = |op: AluImmOp, ops: &[&str]| -> Result<Item, String> {
        Ok(Item::Ready(I::AluImm {
            op,
            rd: reg(ops[0])?,
            rs1: reg(ops[1])?,
            imm: parse_int(ops[2]).ok_or("bad immediate")?,
        }))
    };
    let load = |width: Width, signed: bool, ops: &[&str]| -> Result<Item, String> {
        let (offset, rs1) = mem_operand(ops[1])?;
        Ok(Item::Ready(I::Load {
            rd: reg(ops[0])?,
            rs1,
            offset,
            width,
            signed,
        }))
    };
    let store = |width: Width, ops: &[&str]| -> Result<Item, String> {
        let (offset, rs1) = mem_operand(ops[1])?;
        Ok(Item::Ready(I::Store {
            rs1,
            rs2: reg(ops[0])?,
            offset,
            width,
        }))
    };
    let branch = |op: BranchOp, ops: &[&str]| -> Result<Item, String> {
        let rs1 = reg(ops[0])?;
        let rs2 = reg(ops[1])?;
        match parse_int(ops[2]) {
            Some(off) => Ok(Item::Ready(I::Branch {
                op,
                rs1,
                rs2,
                offset: off,
            })),
            None => Ok(Item::Branch(op, rs1, rs2, ops[2].to_string())),
        }
    };
    let amo = |op: AmoOp, width: Width, ops: &[&str]| -> Result<Item, String> {
        let (_, rs1) = mem_operand(ops[2])?;
        Ok(Item::Ready(I::Amo {
            op,
            rd: reg(ops[0])?,
            rs1,
            rs2: reg(ops[1])?,
            width,
        }))
    };

    let item = match mnemonic {
        // --- pseudo-ops ---
        "nop" => {
            need(0)?;
            Item::Ready(I::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 0,
            })
        }
        "li" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let v = parse_int(ops[1]).ok_or("bad immediate")?;
            li_sequence(rd, v, out);
            return Ok(());
        }
        "mv" => {
            need(2)?;
            Item::Ready(I::AluImm {
                op: AluImmOp::Addi,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: 0,
            })
        }
        "j" => {
            need(1)?;
            match parse_int(ops[0]) {
                Some(off) => Item::Ready(I::Jal {
                    rd: Reg::ZERO,
                    offset: off,
                }),
                None => Item::Jal(Reg::ZERO, ops[0].to_string()),
            }
        }
        "call" => {
            need(1)?;
            Item::Jal(Reg::RA, ops[0].to_string())
        }
        "jr" => {
            need(1)?;
            Item::Ready(I::Jalr {
                rd: Reg::ZERO,
                rs1: reg(ops[0])?,
                offset: 0,
            })
        }
        "ret" => {
            need(0)?;
            Item::Ready(I::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            })
        }
        "beqz" => {
            need(2)?;
            return parse_instruction(&format!("beq {}, x0, {}", ops[0], ops[1]), out);
        }
        "bnez" => {
            need(2)?;
            return parse_instruction(&format!("bne {}, x0, {}", ops[0], ops[1]), out);
        }
        // --- U/J types ---
        "lui" => {
            need(2)?;
            Item::Ready(I::Lui {
                rd: reg(ops[0])?,
                imm: parse_int(ops[1]).ok_or("bad immediate")? << 12,
            })
        }
        "auipc" => {
            need(2)?;
            Item::Ready(I::Auipc {
                rd: reg(ops[0])?,
                imm: parse_int(ops[1]).ok_or("bad immediate")? << 12,
            })
        }
        "jal" => match n {
            1 => Item::Jal(Reg::RA, ops[0].to_string()),
            2 => match parse_int(ops[1]) {
                Some(off) => Item::Ready(I::Jal {
                    rd: reg(ops[0])?,
                    offset: off,
                }),
                None => Item::Jal(reg(ops[0])?, ops[1].to_string()),
            },
            _ => return Err("jal takes 1 or 2 operands".into()),
        },
        "jalr" => {
            need(2)?;
            let (offset, rs1) = mem_operand(ops[1]).or_else(|_| reg(ops[1]).map(|r| (0i64, r)))?;
            Item::Ready(I::Jalr {
                rd: reg(ops[0])?,
                rs1,
                offset,
            })
        }
        // --- branches ---
        "beq" => {
            need(3)?;
            branch(BranchOp::Eq, &ops)?
        }
        "bne" => {
            need(3)?;
            branch(BranchOp::Ne, &ops)?
        }
        "blt" => {
            need(3)?;
            branch(BranchOp::Lt, &ops)?
        }
        "bge" => {
            need(3)?;
            branch(BranchOp::Ge, &ops)?
        }
        "bltu" => {
            need(3)?;
            branch(BranchOp::Ltu, &ops)?
        }
        "bgeu" => {
            need(3)?;
            branch(BranchOp::Geu, &ops)?
        }
        // --- loads/stores ---
        "lb" => {
            need(2)?;
            load(Width::B, true, &ops)?
        }
        "lh" => {
            need(2)?;
            load(Width::H, true, &ops)?
        }
        "lw" => {
            need(2)?;
            load(Width::W, true, &ops)?
        }
        "ld" => {
            need(2)?;
            load(Width::D, true, &ops)?
        }
        "lbu" => {
            need(2)?;
            load(Width::B, false, &ops)?
        }
        "lhu" => {
            need(2)?;
            load(Width::H, false, &ops)?
        }
        "lwu" => {
            need(2)?;
            load(Width::W, false, &ops)?
        }
        "sb" => {
            need(2)?;
            store(Width::B, &ops)?
        }
        "sh" => {
            need(2)?;
            store(Width::H, &ops)?
        }
        "sw" => {
            need(2)?;
            store(Width::W, &ops)?
        }
        "sd" => {
            need(2)?;
            store(Width::D, &ops)?
        }
        // --- ALU immediate ---
        "addi" => {
            need(3)?;
            alu_imm(AluImmOp::Addi, &ops)?
        }
        "slti" => {
            need(3)?;
            alu_imm(AluImmOp::Slti, &ops)?
        }
        "sltiu" => {
            need(3)?;
            alu_imm(AluImmOp::Sltiu, &ops)?
        }
        "xori" => {
            need(3)?;
            alu_imm(AluImmOp::Xori, &ops)?
        }
        "ori" => {
            need(3)?;
            alu_imm(AluImmOp::Ori, &ops)?
        }
        "andi" => {
            need(3)?;
            alu_imm(AluImmOp::Andi, &ops)?
        }
        "slli" => {
            need(3)?;
            alu_imm(AluImmOp::Slli, &ops)?
        }
        "srli" => {
            need(3)?;
            alu_imm(AluImmOp::Srli, &ops)?
        }
        "srai" => {
            need(3)?;
            alu_imm(AluImmOp::Srai, &ops)?
        }
        "addiw" => {
            need(3)?;
            alu_imm(AluImmOp::Addiw, &ops)?
        }
        "slliw" => {
            need(3)?;
            alu_imm(AluImmOp::Slliw, &ops)?
        }
        "srliw" => {
            need(3)?;
            alu_imm(AluImmOp::Srliw, &ops)?
        }
        "sraiw" => {
            need(3)?;
            alu_imm(AluImmOp::Sraiw, &ops)?
        }
        // --- ALU register ---
        "add" => {
            need(3)?;
            alu3(AluOp::Add, &ops)?
        }
        "sub" => {
            need(3)?;
            alu3(AluOp::Sub, &ops)?
        }
        "sll" => {
            need(3)?;
            alu3(AluOp::Sll, &ops)?
        }
        "slt" => {
            need(3)?;
            alu3(AluOp::Slt, &ops)?
        }
        "sltu" => {
            need(3)?;
            alu3(AluOp::Sltu, &ops)?
        }
        "xor" => {
            need(3)?;
            alu3(AluOp::Xor, &ops)?
        }
        "srl" => {
            need(3)?;
            alu3(AluOp::Srl, &ops)?
        }
        "sra" => {
            need(3)?;
            alu3(AluOp::Sra, &ops)?
        }
        "or" => {
            need(3)?;
            alu3(AluOp::Or, &ops)?
        }
        "and" => {
            need(3)?;
            alu3(AluOp::And, &ops)?
        }
        "addw" => {
            need(3)?;
            alu3(AluOp::Addw, &ops)?
        }
        "subw" => {
            need(3)?;
            alu3(AluOp::Subw, &ops)?
        }
        "sllw" => {
            need(3)?;
            alu3(AluOp::Sllw, &ops)?
        }
        "srlw" => {
            need(3)?;
            alu3(AluOp::Srlw, &ops)?
        }
        "sraw" => {
            need(3)?;
            alu3(AluOp::Sraw, &ops)?
        }
        "mul" => {
            need(3)?;
            alu3(AluOp::Mul, &ops)?
        }
        "mulh" => {
            need(3)?;
            alu3(AluOp::Mulh, &ops)?
        }
        "mulhsu" => {
            need(3)?;
            alu3(AluOp::Mulhsu, &ops)?
        }
        "mulhu" => {
            need(3)?;
            alu3(AluOp::Mulhu, &ops)?
        }
        "div" => {
            need(3)?;
            alu3(AluOp::Div, &ops)?
        }
        "divu" => {
            need(3)?;
            alu3(AluOp::Divu, &ops)?
        }
        "rem" => {
            need(3)?;
            alu3(AluOp::Rem, &ops)?
        }
        "remu" => {
            need(3)?;
            alu3(AluOp::Remu, &ops)?
        }
        "mulw" => {
            need(3)?;
            alu3(AluOp::Mulw, &ops)?
        }
        "divw" => {
            need(3)?;
            alu3(AluOp::Divw, &ops)?
        }
        "divuw" => {
            need(3)?;
            alu3(AluOp::Divuw, &ops)?
        }
        "remw" => {
            need(3)?;
            alu3(AluOp::Remw, &ops)?
        }
        "remuw" => {
            need(3)?;
            alu3(AluOp::Remuw, &ops)?
        }
        // --- system / atomics / custom ---
        "fence" => {
            need(0)?;
            Item::Ready(I::Fence)
        }
        "ecall" => {
            need(0)?;
            Item::Ready(I::Ecall)
        }
        "lr.w" | "lr.d" => {
            need(2)?;
            let (_, rs1) = mem_operand(ops[1])?;
            let width = if mnemonic.ends_with('d') {
                Width::D
            } else {
                Width::W
            };
            Item::Ready(I::LoadReserved {
                rd: reg(ops[0])?,
                rs1,
                width,
            })
        }
        "sc.w" | "sc.d" => {
            need(3)?;
            let (_, rs1) = mem_operand(ops[2])?;
            let width = if mnemonic.ends_with('d') {
                Width::D
            } else {
                Width::W
            };
            Item::Ready(I::StoreConditional {
                rd: reg(ops[0])?,
                rs1,
                rs2: reg(ops[1])?,
                width,
            })
        }
        "amoswap.w" => {
            need(3)?;
            amo(AmoOp::Swap, Width::W, &ops)?
        }
        "amoswap.d" => {
            need(3)?;
            amo(AmoOp::Swap, Width::D, &ops)?
        }
        "amoadd.w" => {
            need(3)?;
            amo(AmoOp::Add, Width::W, &ops)?
        }
        "amoadd.d" => {
            need(3)?;
            amo(AmoOp::Add, Width::D, &ops)?
        }
        "amoxor.w" => {
            need(3)?;
            amo(AmoOp::Xor, Width::W, &ops)?
        }
        "amoxor.d" => {
            need(3)?;
            amo(AmoOp::Xor, Width::D, &ops)?
        }
        "amoand.w" => {
            need(3)?;
            amo(AmoOp::And, Width::W, &ops)?
        }
        "amoand.d" => {
            need(3)?;
            amo(AmoOp::And, Width::D, &ops)?
        }
        "amoor.w" => {
            need(3)?;
            amo(AmoOp::Or, Width::W, &ops)?
        }
        "amoor.d" => {
            need(3)?;
            amo(AmoOp::Or, Width::D, &ops)?
        }
        "spm.fetch" => {
            need(3)?;
            Item::Ready(I::SpmFetch {
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: parse_int(ops[2]).ok_or("bad length")?,
            })
        }
        "spm.flush" => {
            need(3)?;
            Item::Ready(I::SpmFlush {
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: parse_int(ops[2]).ok_or("bad length")?,
            })
        }
        other => return Err(format!("unknown mnemonic `{other}`")),
    };
    out.push(item);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn words(image: &[u8]) -> Vec<u32> {
        image
            .chunks(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn assembles_and_decodes_basic_block() {
        let img = assemble("addi a0, x0, 5\nadd a1, a0, a0\necall\n").unwrap();
        let ws = words(&img);
        assert_eq!(ws.len(), 3);
        assert!(decode(ws[0]).is_some());
        assert_eq!(decode(ws[2]), Some(Instruction::Ecall));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let img = assemble(
            r#"
            li a0, 0
        top:
            addi a0, a0, 1
            beq a0, x0, top     # never taken
            bne a0, x0, done
            j top
        done:
            ecall
            "#,
        )
        .unwrap();
        let ws = words(&img);
        // bne is instruction index 3; done is index 5 -> offset +8.
        assert_eq!(
            decode(ws[3]),
            Some(Instruction::Branch {
                op: BranchOp::Ne,
                rs1: Reg(10),
                rs2: Reg(0),
                offset: 8
            })
        );
        // beq at index 2 targets top (1) -> offset -4.
        assert_eq!(
            decode(ws[2]),
            Some(Instruction::Branch {
                op: BranchOp::Eq,
                rs1: Reg(10),
                rs2: Reg(0),
                offset: -4
            })
        );
    }

    #[test]
    fn li_small_is_one_addi() {
        let img = assemble("li a0, 100\n").unwrap();
        assert_eq!(words(&img).len(), 1);
    }

    #[test]
    fn li_32bit_uses_lui() {
        let img = assemble("li a0, 0x12345678\n").unwrap();
        let ws = words(&img);
        assert_eq!(ws.len(), 2);
        assert!(matches!(decode(ws[0]), Some(Instruction::Lui { .. })));
    }

    #[test]
    fn li_64bit_materializes_correctly() {
        use crate::cpu::{Cpu, ExecResult, FlatMemory};
        for v in [
            0xFFFF_0000u64,
            0xDEAD_BEEF_CAFE_F00Du64,
            u64::MAX,
            1 << 63,
            0x8000_0000,
        ] {
            let img = assemble(&format!("li a0, {v}\necall\n")).unwrap();
            let mut mem = FlatMemory::new(4096);
            mem.load_image(0, &img);
            let mut cpu = Cpu::new(0, 64);
            let (_, r) = cpu.run(&mut mem, 100);
            assert_eq!(r, ExecResult::Halted);
            assert_eq!(cpu.reg(Reg(10)), v, "li {v:#x}");
        }
    }

    #[test]
    fn memory_operands_parse() {
        let img = assemble("ld a1, 8(a0)\nsd a1, -16(sp)\nlr.d a2, (a0)\n").unwrap();
        let ws = words(&img);
        assert_eq!(
            decode(ws[0]),
            Some(Instruction::Load {
                rd: Reg(11),
                rs1: Reg(10),
                offset: 8,
                width: Width::D,
                signed: true
            })
        );
        assert_eq!(
            decode(ws[1]),
            Some(Instruction::Store {
                rs1: Reg(2),
                rs2: Reg(11),
                offset: -16,
                width: Width::D
            })
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus a0, a1\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        assert!(e.contains("bogus"), "{e}");
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = assemble("j nowhere\n").unwrap_err();
        assert!(e.contains("nowhere"), "{e}");
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("a:\nnop\na:\nnop\n").unwrap_err();
        assert!(e.contains("duplicate"), "{e}");
    }

    #[test]
    fn pseudo_ops_expand() {
        let img = assemble("nop\nmv a0, a1\nret\nbeqz a0, 8\nbnez a0, 8\n").unwrap();
        assert_eq!(words(&img).len(), 5);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let img = assemble("# comment only\n\n   \nnop # trailing\n").unwrap();
        assert_eq!(words(&img).len(), 1);
    }
}
