//! Instruction decoder: 32-bit machine word → decoded form.

use crate::isa::{AluImmOp, AluOp, AmoOp, BranchOp, Instruction, Reg, Width};

#[inline]
fn rd(w: u32) -> Reg {
    Reg(((w >> 7) & 0x1F) as u8)
}
#[inline]
fn rs1(w: u32) -> Reg {
    Reg(((w >> 15) & 0x1F) as u8)
}
#[inline]
fn rs2(w: u32) -> Reg {
    Reg(((w >> 20) & 0x1F) as u8)
}
#[inline]
fn f3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn f7(w: u32) -> u32 {
    w >> 25
}

#[inline]
fn imm_i(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}

#[inline]
fn imm_s(w: u32) -> i64 {
    let hi = ((w as i32) >> 25) as i64; // sign-extended imm[11:5]
    let lo = ((w >> 7) & 0x1F) as i64;
    (hi << 5) | lo
}

#[inline]
fn imm_b(w: u32) -> i64 {
    let sign = ((w as i32) >> 31) as i64; // imm[12]
    let b11 = ((w >> 7) & 1) as i64;
    let b4_1 = ((w >> 8) & 0xF) as i64;
    let b10_5 = ((w >> 25) & 0x3F) as i64;
    (sign << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}

#[inline]
fn imm_u(w: u32) -> i64 {
    ((w & 0xFFFF_F000) as i32) as i64
}

#[inline]
fn imm_j(w: u32) -> i64 {
    let sign = ((w as i32) >> 31) as i64; // imm[20]
    let b19_12 = ((w >> 12) & 0xFF) as i64;
    let b11 = ((w >> 20) & 1) as i64;
    let b10_1 = ((w >> 21) & 0x3FF) as i64;
    (sign << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

/// Decode one machine word; `None` for anything outside the supported
/// subset.
pub fn decode(w: u32) -> Option<Instruction> {
    use Instruction as I;
    let opcode = w & 0x7F;
    Some(match opcode {
        0b0110111 => I::Lui {
            rd: rd(w),
            imm: imm_u(w),
        },
        0b0010111 => I::Auipc {
            rd: rd(w),
            imm: imm_u(w),
        },
        0b1101111 => I::Jal {
            rd: rd(w),
            offset: imm_j(w),
        },
        0b1100111 if f3(w) == 0 => I::Jalr {
            rd: rd(w),
            rs1: rs1(w),
            offset: imm_i(w),
        },
        0b1100011 => {
            let op = match f3(w) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return None,
            };
            I::Branch {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_b(w),
            }
        }
        0b0000011 => {
            let (width, signed) = match f3(w) {
                0b000 => (Width::B, true),
                0b001 => (Width::H, true),
                0b010 => (Width::W, true),
                0b011 => (Width::D, true),
                0b100 => (Width::B, false),
                0b101 => (Width::H, false),
                0b110 => (Width::W, false),
                _ => return None,
            };
            I::Load {
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
                width,
                signed,
            }
        }
        0b0100011 => {
            let width = match f3(w) {
                0b000 => Width::B,
                0b001 => Width::H,
                0b010 => Width::W,
                0b011 => Width::D,
                _ => return None,
            };
            I::Store {
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_s(w),
                width,
            }
        }
        0b0010011 => {
            let op = match f3(w) {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 if f7(w) & !1 == 0 => AluImmOp::Slli,
                0b101 if f7(w) & !1 == 0 => AluImmOp::Srli,
                0b101 if f7(w) & !1 == 0b0100000 => AluImmOp::Srai,
                _ => return None,
            };
            let imm = match op {
                AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => ((w >> 20) & 0x3F) as i64,
                _ => imm_i(w),
            };
            I::AluImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            }
        }
        0b0011011 => {
            let op = match f3(w) {
                0b000 => AluImmOp::Addiw,
                0b001 if f7(w) == 0 => AluImmOp::Slliw,
                0b101 if f7(w) == 0 => AluImmOp::Srliw,
                0b101 if f7(w) == 0b0100000 => AluImmOp::Sraiw,
                _ => return None,
            };
            let imm = match op {
                AluImmOp::Addiw => imm_i(w),
                _ => ((w >> 20) & 0x1F) as i64,
            };
            I::AluImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            }
        }
        0b0110011 | 0b0111011 => {
            use AluOp::*;
            let wide = opcode == 0b0111011;
            let op = match (f7(w), f3(w), wide) {
                (0b0000000, 0b000, false) => Add,
                (0b0100000, 0b000, false) => Sub,
                (0b0000000, 0b001, false) => Sll,
                (0b0000000, 0b010, false) => Slt,
                (0b0000000, 0b011, false) => Sltu,
                (0b0000000, 0b100, false) => Xor,
                (0b0000000, 0b101, false) => Srl,
                (0b0100000, 0b101, false) => Sra,
                (0b0000000, 0b110, false) => Or,
                (0b0000000, 0b111, false) => And,
                (0b0000001, 0b000, false) => Mul,
                (0b0000001, 0b001, false) => Mulh,
                (0b0000001, 0b010, false) => Mulhsu,
                (0b0000001, 0b011, false) => Mulhu,
                (0b0000001, 0b100, false) => Div,
                (0b0000001, 0b101, false) => Divu,
                (0b0000001, 0b110, false) => Rem,
                (0b0000001, 0b111, false) => Remu,
                (0b0000000, 0b000, true) => Addw,
                (0b0100000, 0b000, true) => Subw,
                (0b0000000, 0b001, true) => Sllw,
                (0b0000000, 0b101, true) => Srlw,
                (0b0100000, 0b101, true) => Sraw,
                (0b0000001, 0b000, true) => Mulw,
                (0b0000001, 0b100, true) => Divw,
                (0b0000001, 0b101, true) => Divuw,
                (0b0000001, 0b110, true) => Remw,
                (0b0000001, 0b111, true) => Remuw,
                _ => return None,
            };
            I::Alu {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        0b0001111 if f3(w) == 0 => I::Fence,
        0b1110011 if w == 0x0000_0073 => I::Ecall,
        0b0101111 => {
            let width = match f3(w) {
                0b010 => Width::W,
                0b011 => Width::D,
                _ => return None,
            };
            match f7(w) >> 2 {
                0b00010 if rs2(w) == Reg(0) => I::LoadReserved {
                    rd: rd(w),
                    rs1: rs1(w),
                    width,
                },
                0b00011 => I::StoreConditional {
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                    width,
                },
                0b00000 => I::Amo {
                    op: AmoOp::Add,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                    width,
                },
                0b00001 => I::Amo {
                    op: AmoOp::Swap,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                    width,
                },
                0b00100 => I::Amo {
                    op: AmoOp::Xor,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                    width,
                },
                0b01000 => I::Amo {
                    op: AmoOp::Or,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                    width,
                },
                0b01100 => I::Amo {
                    op: AmoOp::And,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                    width,
                },
                _ => return None,
            }
        }
        0b0001011 => match f3(w) {
            0b000 => I::SpmFetch {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            },
            0b001 => I::SpmFlush {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            },
            _ => return None,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use proptest::prelude::*;

    #[test]
    fn decodes_known_words() {
        assert_eq!(
            decode(0x0050_0093),
            Some(Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 5
            })
        );
        assert_eq!(decode(0x0000_0073), Some(Instruction::Ecall));
        assert_eq!(decode(0xFFFF_FFFF), None, "all-ones is not an instruction");
        assert_eq!(decode(0), None, "zero word is illegal");
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi x1, x1, -1
        let w = encode(Instruction::AluImm {
            op: AluImmOp::Addi,
            rd: Reg(1),
            rs1: Reg(1),
            imm: -1,
        });
        assert_eq!(
            decode(w),
            Some(Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(1),
                imm: -1
            })
        );
        // sd x5, -24(x2)
        let w = encode(Instruction::Store {
            rs1: Reg(2),
            rs2: Reg(5),
            offset: -24,
            width: Width::D,
        });
        assert_eq!(
            decode(w),
            Some(Instruction::Store {
                rs1: Reg(2),
                rs2: Reg(5),
                offset: -24,
                width: Width::D
            })
        );
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg)
    }

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        use Instruction as I;
        prop_oneof![
            (arb_reg(), -(1i64 << 31)..(1i64 << 31)).prop_map(|(rd, v)| I::Lui {
                rd,
                imm: v & !0xFFF
            }),
            (arb_reg(), arb_reg(), -2048i64..2048).prop_map(|(rd, rs1, imm)| I::Jalr {
                rd,
                rs1,
                offset: imm
            }),
            (arb_reg(), -(1i64 << 19)..(1i64 << 19))
                .prop_map(|(rd, o)| I::Jal { rd, offset: o * 2 }),
            (
                prop_oneof![
                    Just(BranchOp::Eq),
                    Just(BranchOp::Ne),
                    Just(BranchOp::Lt),
                    Just(BranchOp::Ge),
                    Just(BranchOp::Ltu),
                    Just(BranchOp::Geu)
                ],
                arb_reg(),
                arb_reg(),
                -(1i64 << 11)..(1i64 << 11)
            )
                .prop_map(|(op, rs1, rs2, o)| I::Branch {
                    op,
                    rs1,
                    rs2,
                    offset: o * 2
                }),
            (
                arb_reg(),
                arb_reg(),
                -2048i64..2048,
                prop_oneof![
                    Just(Width::B),
                    Just(Width::H),
                    Just(Width::W),
                    Just(Width::D)
                ],
                any::<bool>()
            )
                .prop_map(|(rd, rs1, offset, width, signed)| I::Load {
                    rd,
                    rs1,
                    offset,
                    width,
                    signed: signed || width == Width::D,
                }),
            (
                arb_reg(),
                arb_reg(),
                -2048i64..2048,
                prop_oneof![
                    Just(Width::B),
                    Just(Width::H),
                    Just(Width::W),
                    Just(Width::D)
                ]
            )
                .prop_map(|(rs1, rs2, offset, width)| I::Store {
                    rs1,
                    rs2,
                    offset,
                    width
                }),
            (
                prop_oneof![
                    Just(AluOp::Add),
                    Just(AluOp::Sub),
                    Just(AluOp::Mul),
                    Just(AluOp::Divu),
                    Just(AluOp::Xor),
                    Just(AluOp::Sraw),
                    Just(AluOp::Remw)
                ],
                arb_reg(),
                arb_reg(),
                arb_reg()
            )
                .prop_map(|(op, rd, rs1, rs2)| I::Alu { op, rd, rs1, rs2 }),
            (
                prop_oneof![
                    Just(AluImmOp::Addi),
                    Just(AluImmOp::Andi),
                    Just(AluImmOp::Ori),
                    Just(AluImmOp::Addiw)
                ],
                arb_reg(),
                arb_reg(),
                -2048i64..2048
            )
                .prop_map(|(op, rd, rs1, imm)| I::AluImm { op, rd, rs1, imm }),
            (arb_reg(), arb_reg(), 0i64..64).prop_map(|(rd, rs1, imm)| I::AluImm {
                op: AluImmOp::Slli,
                rd,
                rs1,
                imm
            }),
            Just(I::Fence),
            Just(I::Ecall),
            (
                prop_oneof![
                    Just(AmoOp::Add),
                    Just(AmoOp::Swap),
                    Just(AmoOp::Xor),
                    Just(AmoOp::And),
                    Just(AmoOp::Or)
                ],
                arb_reg(),
                arb_reg(),
                arb_reg(),
                prop_oneof![Just(Width::W), Just(Width::D)]
            )
                .prop_map(|(op, rd, rs1, rs2, width)| I::Amo {
                    op,
                    rd,
                    rs1,
                    rs2,
                    width
                }),
            (arb_reg(), arb_reg(), 0i64..2048).prop_map(|(rd, rs1, imm)| I::SpmFetch {
                rd,
                rs1,
                imm
            }),
            (arb_reg(), arb_reg(), 0i64..2048).prop_map(|(rd, rs1, imm)| I::SpmFlush {
                rd,
                rs1,
                imm
            }),
        ]
    }

    proptest! {
        /// The fundamental ISA invariant: decode(encode(i)) == i.
        #[test]
        fn encode_decode_round_trip(ins in arb_instruction()) {
            let word = encode(ins);
            prop_assert_eq!(decode(word), Some(ins));
        }
    }
}
