//! Instruction encoder: decoded form → 32-bit RISC-V machine word.
//!
//! Standard RV64 encodings; the custom scratchpad instructions use the
//! reserved *custom-0* opcode (0b0001011) in I-type form.

use crate::isa::{AluImmOp, AluOp, AmoOp, BranchOp, Instruction, Reg, Width};

const OP_LUI: u32 = 0b0110111;
const OP_AUIPC: u32 = 0b0010111;
const OP_JAL: u32 = 0b1101111;
const OP_JALR: u32 = 0b1100111;
const OP_BRANCH: u32 = 0b1100011;
const OP_LOAD: u32 = 0b0000011;
const OP_STORE: u32 = 0b0100011;
const OP_IMM: u32 = 0b0010011;
const OP_IMM32: u32 = 0b0011011;
const OP_OP: u32 = 0b0110011;
const OP_OP32: u32 = 0b0111011;
const OP_MISC_MEM: u32 = 0b0001111;
const OP_SYSTEM: u32 = 0b1110011;
const OP_AMO: u32 = 0b0101111;
const OP_CUSTOM0: u32 = 0b0001011;

fn r_type(op: u32, rd: Reg, f3: u32, rs1: Reg, rs2: Reg, f7: u32) -> u32 {
    op | ((rd.0 as u32) << 7)
        | (f3 << 12)
        | ((rs1.0 as u32) << 15)
        | ((rs2.0 as u32) << 20)
        | (f7 << 25)
}

fn i_type(op: u32, rd: Reg, f3: u32, rs1: Reg, imm: i64) -> u32 {
    op | ((rd.0 as u32) << 7) | (f3 << 12) | ((rs1.0 as u32) << 15) | (((imm as u32) & 0xFFF) << 20)
}

fn s_type(op: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i64) -> u32 {
    let imm = imm as u32;
    op | ((imm & 0x1F) << 7)
        | (f3 << 12)
        | ((rs1.0 as u32) << 15)
        | ((rs2.0 as u32) << 20)
        | (((imm >> 5) & 0x7F) << 25)
}

fn b_type(op: u32, f3: u32, rs1: Reg, rs2: Reg, offset: i64) -> u32 {
    let o = offset as u32;
    op | (((o >> 11) & 1) << 7)
        | (((o >> 1) & 0xF) << 8)
        | (f3 << 12)
        | ((rs1.0 as u32) << 15)
        | ((rs2.0 as u32) << 20)
        | (((o >> 5) & 0x3F) << 25)
        | (((o >> 12) & 1) << 31)
}

fn u_type(op: u32, rd: Reg, imm: i64) -> u32 {
    op | ((rd.0 as u32) << 7) | ((imm as u32) & 0xFFFF_F000)
}

fn j_type(op: u32, rd: Reg, offset: i64) -> u32 {
    let o = offset as u32;
    op | ((rd.0 as u32) << 7)
        | (((o >> 12) & 0xFF) << 12)
        | (((o >> 11) & 1) << 20)
        | (((o >> 1) & 0x3FF) << 21)
        | (((o >> 20) & 1) << 31)
}

fn load_f3(width: Width, signed: bool) -> u32 {
    match (width, signed) {
        (Width::B, true) => 0b000,
        (Width::H, true) => 0b001,
        (Width::W, true) => 0b010,
        (Width::D, _) => 0b011,
        (Width::B, false) => 0b100,
        (Width::H, false) => 0b101,
        (Width::W, false) => 0b110,
    }
}

/// Encode one instruction to its machine word.
pub fn encode(ins: Instruction) -> u32 {
    use Instruction as I;
    match ins {
        I::Lui { rd, imm } => u_type(OP_LUI, rd, imm),
        I::Auipc { rd, imm } => u_type(OP_AUIPC, rd, imm),
        I::Jal { rd, offset } => j_type(OP_JAL, rd, offset),
        I::Jalr { rd, rs1, offset } => i_type(OP_JALR, rd, 0, rs1, offset),
        I::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            b_type(OP_BRANCH, f3, rs1, rs2, offset)
        }
        I::Load {
            rd,
            rs1,
            offset,
            width,
            signed,
        } => i_type(OP_LOAD, rd, load_f3(width, signed), rs1, offset),
        I::Store {
            rs1,
            rs2,
            offset,
            width,
        } => {
            let f3 = match width {
                Width::B => 0b000,
                Width::H => 0b001,
                Width::W => 0b010,
                Width::D => 0b011,
            };
            s_type(OP_STORE, f3, rs1, rs2, offset)
        }
        I::AluImm { op, rd, rs1, imm } => {
            use AluImmOp::*;
            match op {
                Addi => i_type(OP_IMM, rd, 0b000, rs1, imm),
                Slti => i_type(OP_IMM, rd, 0b010, rs1, imm),
                Sltiu => i_type(OP_IMM, rd, 0b011, rs1, imm),
                Xori => i_type(OP_IMM, rd, 0b100, rs1, imm),
                Ori => i_type(OP_IMM, rd, 0b110, rs1, imm),
                Andi => i_type(OP_IMM, rd, 0b111, rs1, imm),
                Slli => i_type(OP_IMM, rd, 0b001, rs1, imm & 0x3F),
                Srli => i_type(OP_IMM, rd, 0b101, rs1, imm & 0x3F),
                Srai => i_type(OP_IMM, rd, 0b101, rs1, (imm & 0x3F) | 0x400),
                Addiw => i_type(OP_IMM32, rd, 0b000, rs1, imm),
                Slliw => i_type(OP_IMM32, rd, 0b001, rs1, imm & 0x1F),
                Srliw => i_type(OP_IMM32, rd, 0b101, rs1, imm & 0x1F),
                Sraiw => i_type(OP_IMM32, rd, 0b101, rs1, (imm & 0x1F) | 0x400),
            }
        }
        I::Alu { op, rd, rs1, rs2 } => {
            use AluOp::*;
            let (opc, f3, f7) = match op {
                Add => (OP_OP, 0b000, 0b0000000),
                Sub => (OP_OP, 0b000, 0b0100000),
                Sll => (OP_OP, 0b001, 0b0000000),
                Slt => (OP_OP, 0b010, 0b0000000),
                Sltu => (OP_OP, 0b011, 0b0000000),
                Xor => (OP_OP, 0b100, 0b0000000),
                Srl => (OP_OP, 0b101, 0b0000000),
                Sra => (OP_OP, 0b101, 0b0100000),
                Or => (OP_OP, 0b110, 0b0000000),
                And => (OP_OP, 0b111, 0b0000000),
                Mul => (OP_OP, 0b000, 0b0000001),
                Mulh => (OP_OP, 0b001, 0b0000001),
                Mulhsu => (OP_OP, 0b010, 0b0000001),
                Mulhu => (OP_OP, 0b011, 0b0000001),
                Div => (OP_OP, 0b100, 0b0000001),
                Divu => (OP_OP, 0b101, 0b0000001),
                Rem => (OP_OP, 0b110, 0b0000001),
                Remu => (OP_OP, 0b111, 0b0000001),
                Addw => (OP_OP32, 0b000, 0b0000000),
                Subw => (OP_OP32, 0b000, 0b0100000),
                Sllw => (OP_OP32, 0b001, 0b0000000),
                Srlw => (OP_OP32, 0b101, 0b0000000),
                Sraw => (OP_OP32, 0b101, 0b0100000),
                Mulw => (OP_OP32, 0b000, 0b0000001),
                Divw => (OP_OP32, 0b100, 0b0000001),
                Divuw => (OP_OP32, 0b101, 0b0000001),
                Remw => (OP_OP32, 0b110, 0b0000001),
                Remuw => (OP_OP32, 0b111, 0b0000001),
            };
            r_type(opc, rd, f3, rs1, rs2, f7)
        }
        I::Fence => i_type(OP_MISC_MEM, Reg::ZERO, 0b000, Reg::ZERO, 0),
        I::Ecall => i_type(OP_SYSTEM, Reg::ZERO, 0b000, Reg::ZERO, 0),
        I::LoadReserved { rd, rs1, width } => {
            let f3 = if width == Width::D { 0b011 } else { 0b010 };
            r_type(OP_AMO, rd, f3, rs1, Reg::ZERO, 0b00010 << 2)
        }
        I::StoreConditional {
            rd,
            rs1,
            rs2,
            width,
        } => {
            let f3 = if width == Width::D { 0b011 } else { 0b010 };
            r_type(OP_AMO, rd, f3, rs1, rs2, 0b00011 << 2)
        }
        I::Amo {
            op,
            rd,
            rs1,
            rs2,
            width,
        } => {
            let f3 = if width == Width::D { 0b011 } else { 0b010 };
            let f5 = match op {
                AmoOp::Add => 0b00000,
                AmoOp::Swap => 0b00001,
                AmoOp::Xor => 0b00100,
                AmoOp::Or => 0b01000,
                AmoOp::And => 0b01100,
            };
            r_type(OP_AMO, rd, f3, rs1, rs2, f5 << 2)
        }
        I::SpmFetch { rd, rs1, imm } => i_type(OP_CUSTOM0, rd, 0b000, rs1, imm),
        I::SpmFlush { rd, rs1, imm } => i_type(OP_CUSTOM0, rd, 0b001, rs1, imm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // addi x1, x0, 5 -> 0x00500093
        assert_eq!(
            encode(Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 5
            }),
            0x0050_0093
        );
        // add x3, x1, x2 -> 0x002081B3
        assert_eq!(
            encode(Instruction::Alu {
                op: AluOp::Add,
                rd: Reg(3),
                rs1: Reg(1),
                rs2: Reg(2)
            }),
            0x0020_81B3
        );
        // ld x5, 8(x10) -> 0x00853283
        assert_eq!(
            encode(Instruction::Load {
                rd: Reg(5),
                rs1: Reg(10),
                offset: 8,
                width: Width::D,
                signed: true
            }),
            0x0085_3283
        );
        // sd x5, 16(x10) -> 0x00553823
        assert_eq!(
            encode(Instruction::Store {
                rs1: Reg(10),
                rs2: Reg(5),
                offset: 16,
                width: Width::D
            }),
            0x0055_3823
        );
        // ecall -> 0x00000073
        assert_eq!(encode(Instruction::Ecall), 0x0000_0073);
    }

    #[test]
    fn branch_offset_bits_scatter_correctly() {
        // beq x1, x2, +16 -> imm[12|10:5]=0, imm[4:1|11]=1000,0
        let w = encode(Instruction::Branch {
            op: BranchOp::Eq,
            rs1: Reg(1),
            rs2: Reg(2),
            offset: 16,
        });
        assert_eq!(w, 0x0020_8863);
    }

    #[test]
    fn negative_jal_offset() {
        // jal x0, -4 (tight loop back)
        let w = encode(Instruction::Jal {
            rd: Reg(0),
            offset: -4,
        });
        assert_eq!(w, 0xFFDF_F06F);
    }
}
