//! Memory-trace events — the hart's externally visible memory behaviour.
//!
//! This is the stream the paper's "memory tracer" captured from Spike
//! (§5.1): every main-memory operation with its program counter and
//! access width. Scratchpad accesses are node-local and never appear.

/// Kind of traced memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemEventKind {
    /// Data load from main memory.
    Load,
    /// Data store to main memory.
    Store,
    /// Atomic read-modify-write (AMO / LR / SC).
    Atomic,
    /// Memory fence.
    Fence,
}

/// One traced memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Physical address accessed (irrelevant for fences).
    pub addr: u64,
    /// Operation kind.
    pub kind: MemEventKind,
    /// Access width in bytes (0 for fences).
    pub bytes: u8,
    /// PC of the instruction that produced the event.
    pub pc: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_compare_by_value() {
        let a = MemEvent {
            addr: 0x100,
            kind: MemEventKind::Load,
            bytes: 8,
            pc: 0,
        };
        let b = MemEvent {
            addr: 0x100,
            kind: MemEventKind::Load,
            bytes: 8,
            pc: 0,
        };
        assert_eq!(a, b);
        let c = MemEvent {
            kind: MemEventKind::Store,
            ..a
        };
        assert_ne!(a, c);
    }
}
