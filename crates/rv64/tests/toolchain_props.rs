//! Property tests for the rv64 toolchain as a whole: encode→decode
//! identity over generated instructions, and the assemble→disasm→
//! assemble fixpoint over generated programs (every representation —
//! words, decoded forms, text — must describe the same program).

use proptest::prelude::*;

use rv64_sim::isa::{AluImmOp, AluOp, AmoOp, BranchOp, Instruction, Reg, Width};
use rv64_sim::{assemble, decode, disassemble_image, encode};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B),
        Just(Width::H),
        Just(Width::W),
        Just(Width::D)
    ]
}

/// Every encodable instruction form, with immediates constrained to the
/// ranges the binary format can carry (so encode is lossless).
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    use Instruction as I;
    prop_oneof![
        (arb_reg(), -(1i64 << 31)..(1i64 << 31)).prop_map(|(rd, v)| I::Lui {
            rd,
            imm: v & !0xFFF
        }),
        (arb_reg(), -(1i64 << 31)..(1i64 << 31)).prop_map(|(rd, v)| I::Auipc {
            rd,
            imm: v & !0xFFF
        }),
        (arb_reg(), -(1i64 << 19)..(1i64 << 19)).prop_map(|(rd, o)| I::Jal { rd, offset: o * 2 }),
        (arb_reg(), arb_reg(), -2048i64..2048).prop_map(|(rd, rs1, offset)| I::Jalr {
            rd,
            rs1,
            offset
        }),
        (
            prop_oneof![
                Just(BranchOp::Eq),
                Just(BranchOp::Ne),
                Just(BranchOp::Lt),
                Just(BranchOp::Ge),
                Just(BranchOp::Ltu),
                Just(BranchOp::Geu)
            ],
            arb_reg(),
            arb_reg(),
            -(1i64 << 11)..(1i64 << 11)
        )
            .prop_map(|(op, rs1, rs2, o)| I::Branch {
                op,
                rs1,
                rs2,
                offset: o * 2
            }),
        (
            arb_reg(),
            arb_reg(),
            -2048i64..2048,
            arb_width(),
            any::<bool>()
        )
            .prop_map(|(rd, rs1, offset, width, signed)| I::Load {
                rd,
                rs1,
                offset,
                width,
                signed: signed || width == Width::D,
            }),
        (arb_reg(), arb_reg(), -2048i64..2048, arb_width()).prop_map(
            |(rs1, rs2, offset, width)| I::Store {
                rs1,
                rs2,
                offset,
                width
            }
        ),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Slti),
                Just(AluImmOp::Sltiu),
                Just(AluImmOp::Xori),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Andi),
                Just(AluImmOp::Addiw)
            ],
            arb_reg(),
            arb_reg(),
            -2048i64..2048
        )
            .prop_map(|(op, rd, rs1, imm)| I::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(AluImmOp::Slli),
                Just(AluImmOp::Srli),
                Just(AluImmOp::Srai)
            ],
            arb_reg(),
            arb_reg(),
            0i64..64
        )
            .prop_map(|(op, rd, rs1, imm)| I::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(AluImmOp::Slliw),
                Just(AluImmOp::Srliw),
                Just(AluImmOp::Sraiw)
            ],
            arb_reg(),
            arb_reg(),
            0i64..32
        )
            .prop_map(|(op, rd, rs1, imm)| I::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::Sll),
                Just(AluOp::Slt),
                Just(AluOp::Sltu),
                Just(AluOp::Xor),
                Just(AluOp::Srl),
                Just(AluOp::Sra),
                Just(AluOp::Or),
                Just(AluOp::And),
                Just(AluOp::Mul),
                Just(AluOp::Mulh),
                Just(AluOp::Mulhsu),
                Just(AluOp::Mulhu),
                Just(AluOp::Div),
                Just(AluOp::Divu),
                Just(AluOp::Rem),
                Just(AluOp::Remu),
                Just(AluOp::Addw),
                Just(AluOp::Subw),
                Just(AluOp::Sllw),
                Just(AluOp::Srlw),
                Just(AluOp::Sraw),
                Just(AluOp::Mulw),
                Just(AluOp::Divw),
                Just(AluOp::Divuw),
                Just(AluOp::Remw),
                Just(AluOp::Remuw)
            ],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| I::Alu { op, rd, rs1, rs2 }),
        Just(I::Fence),
        Just(I::Ecall),
        (
            arb_reg(),
            arb_reg(),
            prop_oneof![Just(Width::W), Just(Width::D)]
        )
            .prop_map(|(rd, rs1, width)| I::LoadReserved { rd, rs1, width }),
        (
            arb_reg(),
            arb_reg(),
            arb_reg(),
            prop_oneof![Just(Width::W), Just(Width::D)]
        )
            .prop_map(|(rd, rs1, rs2, width)| I::StoreConditional {
                rd,
                rs1,
                rs2,
                width
            }),
        (
            prop_oneof![
                Just(AmoOp::Add),
                Just(AmoOp::Swap),
                Just(AmoOp::Xor),
                Just(AmoOp::And),
                Just(AmoOp::Or)
            ],
            arb_reg(),
            arb_reg(),
            arb_reg(),
            prop_oneof![Just(Width::W), Just(Width::D)]
        )
            .prop_map(|(op, rd, rs1, rs2, width)| I::Amo {
                op,
                rd,
                rs1,
                rs2,
                width
            }),
        (arb_reg(), arb_reg(), 0i64..2048).prop_map(|(rd, rs1, imm)| I::SpmFetch { rd, rs1, imm }),
        (arb_reg(), arb_reg(), 0i64..2048).prop_map(|(rd, rs1, imm)| I::SpmFlush { rd, rs1, imm }),
    ]
}

fn image_of(instrs: &[Instruction]) -> Vec<u8> {
    instrs
        .iter()
        .flat_map(|&i| encode(i).to_le_bytes())
        .collect()
}

proptest! {
    /// decode(encode(i)) == i for every encodable instruction.
    #[test]
    fn encode_decode_identity(ins in arb_instruction()) {
        let word = encode(ins);
        prop_assert_eq!(decode(word), Some(ins));
    }

    /// The textual listing of a generated program reassembles to the
    /// exact same image, and disassembly is a fixpoint from then on:
    /// asm(disasm(img)) == img and disasm is stable across the trip.
    #[test]
    fn assemble_disasm_assemble_fixpoint(
        instrs in proptest::collection::vec(arb_instruction(), 1..40)
    ) {
        let img1 = image_of(&instrs);
        let text1 = disassemble_image(&img1).join("\n");
        let img2 = assemble(&text1).expect("disassembly must be assemblable");
        prop_assert_eq!(&img1, &img2, "text -> words is lossless");
        let text2 = disassemble_image(&img2).join("\n");
        prop_assert_eq!(text1, text2, "disassembly is a fixpoint");
    }

    /// Arbitrary words either fail to decode or survive the full
    /// words -> text -> words trip with identical decoded meaning.
    #[test]
    fn arbitrary_words_round_trip_through_text(word in any::<u32>()) {
        if let Some(ins) = decode(word) {
            let listing = disassemble_image(&word.to_le_bytes()).join("\n");
            let img = assemble(&listing).expect("decodable word reassembles");
            let word2 = u32::from_le_bytes(img[..4].try_into().unwrap());
            prop_assert_eq!(decode(word2), Some(ins));
        }
    }
}
