//! HMC packet model (§2.2.2 of the paper; HMC 2.1 specification).
//!
//! The HMC protocol is packetized: every request and response is a train
//! of 16 B FLITs. Control information (header + tail: cube id, address,
//! tag, CRC, error codes) occupies exactly **one FLIT per packet**, i.e.
//! 32 B per complete memory access (request packet + response packet),
//! independent of the payload size. This fixed overhead is what makes
//! small transactions so inefficient (Figure 3) and is the quantity MAC
//! amortizes by coalescing.
//!
//! Packet layout (READ example):
//!
//! ```text
//! request:  [ header+tail: 1 FLIT ]                      = 1 FLIT
//! response: [ header+tail: 1 FLIT ][ data: size/16 FLITs ] = 1 + n FLITs
//! ```
//!
//! WRITE carries the data on the request packet and a bare 1-FLIT
//! completion on the response.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::request::ReqSize;

/// Control FLITs per packet (header + tail combined, 16 B).
pub const CONTROL_FLITS_PER_PACKET: u64 = 1;

/// Kind of HMC link packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Read request: 1 control FLIT, no data.
    ReadRequest,
    /// Read response: 1 control FLIT + payload FLITs.
    ReadResponse,
    /// Write request: 1 control FLIT + payload FLITs.
    WriteRequest,
    /// Write completion: 1 control FLIT.
    WriteResponse,
    /// Atomic request: 1 control FLIT + 1 operand FLIT.
    AtomicRequest,
    /// Atomic response: 1 control FLIT + 1 result FLIT.
    AtomicResponse,
}

/// A link-level HMC packet: the unit of serialization on the SerDes links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HmcPacket {
    /// Packet kind.
    pub kind: PacketKind,
    /// Target (or echoed) start address.
    pub addr: PhysAddr,
    /// Payload size of the underlying transaction.
    pub size: ReqSize,
    /// Link-layer tag correlating request and response packets.
    pub tag: u32,
}

impl HmcPacket {
    /// Total length of this packet in FLITs (control + data).
    pub fn flits(&self) -> u64 {
        CONTROL_FLITS_PER_PACKET + self.data_flits()
    }

    /// Data FLITs carried by this packet.
    pub fn data_flits(&self) -> u64 {
        match self.kind {
            PacketKind::ReadRequest | PacketKind::WriteResponse => 0,
            PacketKind::ReadResponse | PacketKind::WriteRequest => self.size.flits(),
            PacketKind::AtomicRequest | PacketKind::AtomicResponse => 1,
        }
    }

    /// Total length in bytes.
    pub fn bytes_len(&self) -> u64 {
        self.flits() * 16
    }

    /// Encode the packet header into its on-link wire format. The data
    /// payload is timing-only in this simulator (contents are not modeled),
    /// so only the 16 B control FLIT is materialized.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(match self.kind {
            PacketKind::ReadRequest => 0,
            PacketKind::ReadResponse => 1,
            PacketKind::WriteRequest => 2,
            PacketKind::WriteResponse => 3,
            PacketKind::AtomicRequest => 4,
            PacketKind::AtomicResponse => 5,
        });
        buf.put_u8(self.size.flits() as u8);
        buf.put_u32(self.tag);
        buf.put_u64(self.addr.raw());
        // CRC over the first 14 bytes, stored in the tail position.
        let crc = crc16(&buf);
        buf.put_u16(crc);
        buf.freeze()
    }

    /// Decode a packet header produced by [`HmcPacket::encode`], verifying
    /// the CRC. Returns `None` for malformed or corrupted headers.
    pub fn decode(mut raw: Bytes) -> Option<HmcPacket> {
        if raw.len() != 16 {
            return None;
        }
        let body = raw.slice(0..14);
        let kind_byte = raw.get_u8();
        let flits = raw.get_u8() as u64;
        let tag = raw.get_u32();
        let addr = raw.get_u64();
        let crc = raw.get_u16();
        if crc != crc16(&body) {
            return None;
        }
        let kind = match kind_byte {
            0 => PacketKind::ReadRequest,
            1 => PacketKind::ReadResponse,
            2 => PacketKind::WriteRequest,
            3 => PacketKind::WriteResponse,
            4 => PacketKind::AtomicRequest,
            5 => PacketKind::AtomicResponse,
            _ => return None,
        };
        let size = match flits {
            1 => ReqSize::B16,
            2 => ReqSize::B32,
            4 => ReqSize::B64,
            8 => ReqSize::B128,
            16 => ReqSize::B256,
            _ => return None,
        };
        Some(HmcPacket {
            kind,
            addr: PhysAddr::new(addr),
            size,
            tag,
        })
    }
}

/// CRC-16/CCITT-FALSE, the polynomial family used by the HMC spec's
/// packet integrity field.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(kind: PacketKind, size: ReqSize) -> HmcPacket {
        HmcPacket {
            kind,
            addr: PhysAddr::new(0xABC0),
            size,
            tag: 42,
        }
    }

    #[test]
    fn read_request_is_one_flit_regardless_of_size() {
        for size in [ReqSize::B16, ReqSize::B64, ReqSize::B256] {
            assert_eq!(pkt(PacketKind::ReadRequest, size).flits(), 1);
        }
    }

    #[test]
    fn read_response_carries_payload() {
        assert_eq!(pkt(PacketKind::ReadResponse, ReqSize::B16).flits(), 2);
        assert_eq!(pkt(PacketKind::ReadResponse, ReqSize::B256).flits(), 17);
    }

    #[test]
    fn access_control_overhead_is_32_bytes() {
        // §2.2.2: one FLIT of control per packet, 32 B per access.
        for size in [ReqSize::B16, ReqSize::B128, ReqSize::B256] {
            let req = pkt(PacketKind::ReadRequest, size);
            let rsp = pkt(PacketKind::ReadResponse, size);
            let control =
                (req.flits() - req.data_flits()) * 16 + (rsp.flits() - rsp.data_flits()) * 16;
            assert_eq!(control, 32);
        }
    }

    #[test]
    fn write_totals_match_read_totals() {
        // A write access moves the same FLITs as a read, just on the
        // request side instead of the response side.
        for size in [ReqSize::B16, ReqSize::B64, ReqSize::B256] {
            let read = pkt(PacketKind::ReadRequest, size).flits()
                + pkt(PacketKind::ReadResponse, size).flits();
            let write = pkt(PacketKind::WriteRequest, size).flits()
                + pkt(PacketKind::WriteResponse, size).flits();
            assert_eq!(read, write);
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        for kind in [
            PacketKind::ReadRequest,
            PacketKind::ReadResponse,
            PacketKind::WriteRequest,
            PacketKind::WriteResponse,
            PacketKind::AtomicRequest,
            PacketKind::AtomicResponse,
        ] {
            for size in [
                ReqSize::B16,
                ReqSize::B32,
                ReqSize::B64,
                ReqSize::B128,
                ReqSize::B256,
            ] {
                let p = pkt(kind, size);
                let enc = p.encode();
                assert_eq!(enc.len(), 16, "control FLIT is 16 B");
                assert_eq!(HmcPacket::decode(enc).as_ref(), Some(&p));
            }
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let p = pkt(PacketKind::ReadRequest, ReqSize::B64);
        let mut enc = BytesMut::from(&p.encode()[..]);
        enc[6] ^= 0xFF; // flip an address byte -> CRC mismatch
        assert_eq!(HmcPacket::decode(enc.freeze()), None);
        assert_eq!(HmcPacket::decode(Bytes::from_static(&[0u8; 8])), None);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }
}
