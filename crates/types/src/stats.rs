//! Small statistics helpers shared across the simulator crates.

use serde::{Deserialize, Serialize};

/// Saturating event counter with mean/min/max tracking for an associated
/// magnitude (e.g. latency per event, merged requests per entry).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Counter {
    /// Number of recorded events.
    pub events: u64,
    /// Sum of recorded magnitudes.
    pub sum: u128,
    /// Minimum recorded magnitude (0 when empty).
    pub min: u64,
    /// Maximum recorded magnitude.
    pub max: u64,
}

impl Counter {
    /// Fresh, empty counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Record one event of the given magnitude.
    #[inline]
    pub fn record(&mut self, value: u64) {
        if self.events == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.events += 1;
        self.sum += value as u128;
    }

    /// Increment the event count with magnitude 1 (pure tally).
    #[inline]
    pub fn tick(&mut self) {
        self.record(1);
    }

    /// Arithmetic mean of recorded magnitudes (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.sum as f64 / self.events as f64
        }
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        if other.events == 0 {
            return;
        }
        if self.events == 0 {
            *self = other.clone();
            return;
        }
        self.events += other.events;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_min_max_mean() {
        let mut c = Counter::new();
        assert_eq!(c.mean(), 0.0);
        c.record(10);
        c.record(20);
        c.record(30);
        assert_eq!(c.events, 3);
        assert_eq!(c.min, 10);
        assert_eq!(c.max, 30);
        assert_eq!(c.mean(), 20.0);
    }

    #[test]
    fn first_record_initializes_min() {
        let mut c = Counter::new();
        c.record(5);
        assert_eq!(c.min, 5);
        assert_eq!(c.max, 5);
    }

    #[test]
    fn merge_combines_disjoint_ranges() {
        let mut a = Counter::new();
        a.record(1);
        a.record(2);
        let mut b = Counter::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.events, 3);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 100);

        let mut empty = Counter::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        let before = a.clone();
        a.merge(&Counter::new());
        assert_eq!(a, before);
    }

    #[test]
    fn tick_counts_events() {
        let mut c = Counter::new();
        for _ in 0..7 {
            c.tick();
        }
        assert_eq!(c.events, 7);
        assert_eq!(c.sum, 7);
    }
}

/// Log-scaled latency histogram with percentile queries.
///
/// Buckets are powers of two (bucket `i` holds values in
/// `[2^i, 2^(i+1))`, bucket 0 holds 0 and 1), giving ~2x resolution over
/// any latency range with 64 fixed buckets — enough for p50/p95/p99
/// reporting without storing samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < 2 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The 64 raw bucket counts (bucket `i` holds values in
    /// `[2^i, 2^(i+1))`). Exposed for serialization in the experiment
    /// engine's result cache.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuild a histogram from serialized parts (the inverse of
    /// [`Histogram::buckets`] + [`Histogram::count`]). `buckets` longer
    /// than 64 entries are truncated; shorter ones are zero-padded.
    pub fn from_parts(bucket_counts: &[u64], count: u64) -> Self {
        let mut buckets = vec![0u64; 64];
        for (dst, src) in buckets.iter_mut().zip(bucket_counts) {
            *dst = *src;
        }
        Histogram { buckets, count }
    }

    /// Approximate value at quantile `q` in `[0, 1]` (upper bound of the
    /// containing bucket). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return match i {
                    0 => 1,
                    63 => u64::MAX,
                    _ => (1u64 << (i + 1)) - 1,
                };
            }
        }
        u64::MAX
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn quantiles_bound_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Bucket upper bounds: p50 in [500, 1023], p99 in [991, 1023].
        assert!((500..=1023).contains(&p50), "{p50}");
        assert!((991..=1023).contains(&p99), "{p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(300);
        // 300 lives in [256, 512): upper bound 511.
        assert_eq!(h.quantile(0.0), 511);
        assert_eq!(h.quantile(1.0), 511);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0) >= 10_000);
        assert!(a.quantile(0.25) <= 15);
    }

    #[test]
    fn zero_and_one_share_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.quantile(1.0), 1);
    }
}
