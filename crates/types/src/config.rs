//! Configuration structs mirroring Table 1 of the paper plus the knobs the
//! evaluation sweeps (ARQ entries, thread count, FLIT-table policy).
//!
//! Defaults reproduce the paper's simulated system exactly:
//! RV64 cores x8 @3.3 GHz, 1 MB SPM/core (1 ns), 8 GB HMC with 4 links and
//! 256 B rows (~93 ns average access), ARQ of 32 x 64 B entries.

use serde::{Deserialize, Serialize};

/// Core-side (node) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// Number of in-order cores per node (Table 1: 8).
    pub cores: usize,
    /// Core clock in GHz (Table 1: 3.3).
    pub freq_ghz: f64,
    /// Hardware threads per node. The paper evaluates 2/4/8; threads are
    /// spread round-robin over cores.
    pub threads: usize,
    /// Scratchpad size per core in bytes (Table 1: 1 MB).
    pub spm_bytes: u64,
    /// Average SPM access latency in CPU cycles (Table 1: 1 ns ~ 3 cycles
    /// at 3.3 GHz; we round to 3).
    pub spm_latency: u64,
    /// Maximum outstanding memory requests per thread before it stalls.
    ///
    /// The default (`usize::MAX`, fully open-loop) reproduces the paper's
    /// *evaluation methodology*: its traces were captured from functional
    /// Spike runs and replayed into the timed MAC simulator, so requests
    /// arrive at the demand rate of Figure 9 (up to 9.32 per cycle) and
    /// the system self-throttles only through queue backpressure. Set to
    /// 1 for the strict "stall-until-complete" core model of §3 (the
    /// `ablate_closed_loop` bench measures the difference).
    pub max_outstanding_per_thread: usize,
    /// Number of NUMA nodes in the system (Figure 4). The paper's
    /// evaluation uses a single node.
    pub nodes: usize,
    /// One-way interconnect latency between nodes, in cycles, for remote
    /// accesses.
    pub interconnect_latency: u64,
    /// Cycles a core pays to switch between hardware threads. 0 models
    /// the paper's spatial multithreading (threads on distinct cores or
    /// free round-robin); small non-zero values model the "temporal
    /// multithreading with quick context switching" extension §3
    /// sketches for SPM-based architectures.
    pub context_switch_penalty: u64,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            cores: 8,
            freq_ghz: 3.3,
            threads: 8,
            spm_bytes: 1 << 20,
            spm_latency: 3,
            max_outstanding_per_thread: usize::MAX,
            nodes: 1,
            interconnect_latency: 100,
            context_switch_penalty: 0,
        }
    }
}

/// Policy for the second builder stage's size decision (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlitTablePolicy {
    /// Paper's FLIT table: the packet spans from the first to the last
    /// active 64 B chunk, rounded up to 64/128/256 B (0110 -> 128 B).
    SpanRounded,
    /// Ablation: always emit a full 256 B row request (the "just enlarge
    /// the cache line" strawman of §2.3.2).
    Always256,
    /// Ablation: emit one 64 B request per active chunk (MSHR-style fixed
    /// 64 B granularity of §2.3.2).
    PerChunk64,
}

/// MAC configuration (§4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacConfig {
    /// ARQ entries (Table 1: 32; Figure 11 sweeps 8..64).
    pub arq_entries: usize,
    /// Bytes per ARQ entry (Table 1: 64). 10 B hold the extended address
    /// and FLIT map; the rest buffers 4.5 B targets (§5.3.3).
    pub arq_entry_bytes: u64,
    /// Cycles between ARQ pops toward the request builder (§4.1: "every
    /// two clock cycles, a request is popped").
    pub pop_interval: u64,
    /// Latency of builder stage 1 (OR-reduce), cycles (§4.2: 1).
    pub stage1_latency: u64,
    /// Latency of builder stage 2 (table lookup + build), cycles (§4.2.1: 2).
    pub stage2_latency: u64,
    /// FLIT-table policy (default: the paper's span-rounded table).
    pub flit_table: FlitTablePolicy,
    /// Enable the `B`-bit bypass path for single-request rows (§4.1.2).
    pub bypass_enabled: bool,
    /// Enable the latency-hiding fill mechanism: when free entries exceed
    /// half the ARQ, that many raw requests skip the comparators (§4.1).
    pub latency_hiding: bool,
    /// Capacity of the local/remote/global FIFO queues in the request
    /// router (§3.1).
    pub router_queue_depth: usize,
    /// Raw requests the ARQ can accept per cycle. The paper's §4.4
    /// states one; note that together with the 0.5/cycle pop rate this
    /// caps steady-state coalescing efficiency at 50 % (emitted ≥ raw/2
    /// when every accept slot is used), so the >60 % per-benchmark
    /// efficiencies in Figure 10 imply a wider accept port. Values > 1
    /// model a multi-ported CAM (the `ablate_accept_width` bench).
    pub accepts_per_cycle: usize,
}

impl MacConfig {
    /// Maximum distinct targets one entry can hold:
    /// `(entry_bytes − 10) / 4.5` = 12 for 64 B entries (§5.3.3).
    pub fn max_targets_per_entry(&self) -> usize {
        (((self.arq_entry_bytes as f64) - 10.0) / 4.5).floor() as usize
    }

    /// ARQ storage in bytes (Figure 16's x-axis -> y-axis mapping).
    pub fn arq_bytes(&self) -> u64 {
        self.arq_entries as u64 * self.arq_entry_bytes
    }
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            arq_entries: 32,
            arq_entry_bytes: 64,
            pop_interval: 2,
            stage1_latency: 1,
            stage2_latency: 2,
            flit_table: FlitTablePolicy::SpanRounded,
            bypass_enabled: true,
            latency_hiding: true,
            router_queue_depth: 64,
            accepts_per_cycle: 1,
        }
    }
}

/// How [`HmcConfig::links`] are chosen when a request packet is sent
/// down to the cube.
///
/// Historically the selection was implicit (earliest-free link, first
/// index on ties — which rotates round-robin under uniform load); this
/// enum names that behavior and adds an alternative, so experiments can
/// state which policy they measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkSelectPolicy {
    /// Earliest-free link, lowest index on ties (the historical implicit
    /// behavior — byte-identical results to before the knob existed).
    #[default]
    RoundRobin,
    /// Link with the least accumulated busy time, lowest index on ties.
    /// Differs from `RoundRobin` only under non-uniform packet sizes.
    LeastLoaded,
}

/// HMC device configuration (Table 1 plus HMC 2.1 spec structure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HmcConfig {
    /// Serial links to the host (Table 1: 4).
    pub links: usize,
    /// Device capacity in bytes (Table 1: 8 GB).
    pub capacity: u64,
    /// Vaults (HMC 2.1: 32).
    pub vaults: usize,
    /// Banks per vault (8 GB cube: 16, for 512 total banks; §2.2.1).
    pub banks_per_vault: usize,
    /// DRAM row size in bytes (Table 1: 256).
    pub row_bytes: u64,
    /// Per-link bandwidth in GB/s each direction (4 x 30 GB/s = 120 GB/s
    ///< the 320 GB/s peak of an 8-link cube).
    pub link_gbps: f64,
    /// Core cycles to transfer one FLIT on one link (derived from
    /// `link_gbps` at build time; see [`HmcConfig::flit_cycles_x16`]).
    pub cpu_ghz: f64,
    /// Closed-page activate latency (tRCD) in core cycles.
    pub t_rcd: u64,
    /// Column access latency (tCL) in core cycles.
    pub t_cl: u64,
    /// Precharge latency (tRP) in core cycles — paid on every access under
    /// the closed-page policy (§2.2.1).
    pub t_rp: u64,
    /// Cycles to stream one 32 B column burst out of the sense amps.
    pub t_burst_per_32b: u64,
    /// Fixed logic-layer traversal (crossbar + vault controller) one-way,
    /// in core cycles.
    pub logic_latency: u64,
    /// Vault controller command queue depth.
    pub vault_queue_depth: usize,
    /// Link packet error rate (probability a packet fails CRC and must
    /// retransmit; HMC's link retry protocol). 0.0 disables injection.
    pub link_error_rate: f64,
    /// Extra cycles per retransmission (timeout detection + replay from
    /// the link retry buffer).
    pub retry_penalty: u64,
    /// Seed for the error-injection RNG (deterministic runs).
    pub error_seed: u64,
    /// How request packets are spread over the host links.
    pub link_select: LinkSelectPolicy,
}

impl HmcConfig {
    /// Core cycles to serialize one 16 B FLIT on a single link.
    /// At 30 GB/s and 3.3 GHz: 16 B / (30 B/ns) = 0.533 ns = 1.76 cycles;
    /// we model it with fixed-point x16 to keep cycle math integral.
    pub fn flit_cycles_x16(&self) -> u64 {
        let ns_per_flit = 16.0 / self.link_gbps; // GB/s == B/ns
        (ns_per_flit * self.cpu_ghz * 16.0).round() as u64
    }

    /// DRAM service time for one access of `payload_bytes`, excluding
    /// queueing: activate + column + burst + precharge.
    pub fn dram_service_cycles(&self, payload_bytes: u64) -> u64 {
        let bursts = payload_bytes.div_ceil(32).max(1);
        self.t_rcd + self.t_cl + bursts * self.t_burst_per_32b + self.t_rp
    }

    /// Total banks in the cube.
    pub fn total_banks(&self) -> usize {
        self.vaults * self.banks_per_vault
    }
}

impl Default for HmcConfig {
    fn default() -> Self {
        // Calibrated so an uncontended 16 B read round-trip is ~93 ns
        // (~307 cycles at 3.3 GHz): link ser/deser + logic + DRAM.
        HmcConfig {
            links: 4,
            capacity: 8 << 30,
            vaults: 32,
            banks_per_vault: 16,
            row_bytes: 256,
            link_gbps: 30.0,
            cpu_ghz: 3.3,
            t_rcd: 60, // ~18.2 ns
            t_cl: 60,  // ~18.2 ns
            t_rp: 46,  // ~13.9 ns
            t_burst_per_32b: 4,
            logic_latency: 90, // ~27 ns each way (SerDes + crossbar + VC)
            vault_queue_depth: 32,
            link_error_rate: 0.0,
            retry_penalty: 100,
            error_seed: 0x5EED,
            link_select: LinkSelectPolicy::RoundRobin,
        }
    }
}

/// JEDEC DDR4 channel configuration (§2.2's conventional baseline):
/// 64 B burst granularity, 8 KB open-page rows, 16 banks, one shared
/// data bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdrConfig {
    /// Banks in the rank.
    pub banks: usize,
    /// Row (page) size in bytes (DDR4: 8 KB typical).
    pub row_bytes: u64,
    /// Activate latency in core cycles.
    pub t_rcd: u64,
    /// Column access latency in core cycles.
    pub t_cl: u64,
    /// Precharge latency in core cycles.
    pub t_rp: u64,
    /// Cycles per 64 B burst on the shared data bus.
    pub t_burst: u64,
    /// Controller/PHY latency each way, in core cycles.
    pub interface_latency: u64,
    /// Controller transaction queue depth.
    pub queue_depth: usize,
}

impl Default for DdrConfig {
    fn default() -> Self {
        // DDR4-2400-ish timings at 3.3 GHz core cycles.
        DdrConfig {
            banks: 16,
            row_bytes: 8 << 10,
            t_rcd: 46,
            t_cl: 46,
            t_rp: 46,
            t_burst: 11, // 64 B at ~19.2 GB/s
            interface_latency: 50,
            queue_depth: 32,
        }
    }
}

/// Memory back end selection (§4.3: MAC applies to both HMC and HBM).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemBackend {
    /// Hybrid Memory Cube (the paper's evaluation device).
    #[default]
    Hmc,
    /// High Bandwidth Memory (the §4.3 portability target).
    Hbm,
    /// Conventional JEDEC DDR4 (the §2.2 baseline).
    Ddr,
}

/// HBM device configuration (§4.3): DDR-style burst protocol, 32 B
/// minimum access, 1 KB rows, open-page row buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Independent channels (HBM2: 8 per stack).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// DRAM row (page) size in bytes (HBM: 1 KB).
    pub row_bytes: u64,
    /// Activate latency in core cycles.
    pub t_rcd: u64,
    /// Column access latency in core cycles.
    pub t_cl: u64,
    /// Precharge latency in core cycles.
    pub t_rp: u64,
    /// Cycles per 32 B burst on a channel's data bus.
    pub t_burst_per_32b: u64,
    /// PHY/interface latency each way, in core cycles.
    pub interface_latency: u64,
    /// Open-page policy (row buffers stay open; §2.2.1 notes HBM's 1 KB
    /// rows make this viable where HMC's 256 B rows do not).
    pub open_page: bool,
    /// Per-channel command queue depth.
    pub channel_queue_depth: usize,
}

impl Default for HbmConfig {
    fn default() -> Self {
        HbmConfig {
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 1024,
            t_rcd: 46,
            t_cl: 46,
            t_rp: 46,
            t_burst_per_32b: 2,
            interface_latency: 40,
            open_page: true,
            channel_queue_depth: 32,
        }
    }
}

/// Shape of the inter-cube network (HMC chaining, §7 of the HMC 2.1
/// spec; studied by Hadidi et al. for NoC-connected stacks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetTopology {
    /// Cubes in a line; the host attaches to cube 0. Worst-case hop
    /// count grows linearly with the chain length.
    #[default]
    DaisyChain,
    /// Cubes in a cycle; the host attaches to cube 0 and packets take
    /// the shorter arc (ties go clockwise, deterministically).
    Ring,
    /// Four cubes in a 2×2 grid, host at cube 0, dimension-order (X
    /// then Y) routing. Requires `cubes == 4`.
    Mesh2x2,
}

/// Where the coalescer sits relative to the cube network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacPlacement {
    /// One MAC at the host: packets crossing the network are already
    /// coalesced (fewer, larger packets pay the hop serialization).
    #[default]
    HostOnly,
    /// One MAC at each cube's ingress: raw 16 B requests cross the
    /// network and coalesce only against traffic for the same cube.
    PerCube,
}

/// How the cube-id field is carved out of the 52-bit physical address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CubeMapping {
    /// Cube id = high-order capacity bits (`addr / capacity`). Cube 0
    /// owns the lowest addresses, so the mapping restricted to cube 0
    /// is bit-for-bit today's single-cube mapping.
    Contiguous,
    /// Cube bits sit just above the vault/bank interleave bits, so
    /// consecutive 128 KB row groups rotate across cubes and ordinary
    /// working sets exercise every cube.
    #[default]
    Interleaved,
}

/// Multi-cube network configuration (the `mac-net` subsystem).
///
/// Disabled by default: a disabled net is the classic single-cube
/// system and takes the `system.rs` fast path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Route requests through the cube network instead of a single
    /// directly-attached device.
    pub enabled: bool,
    /// Number of cubes (power of two; `Mesh2x2` requires exactly 4).
    pub cubes: usize,
    /// How the cubes are wired together.
    pub topology: NetTopology,
    /// Where coalescing happens.
    pub placement: MacPlacement,
    /// How addresses map onto cubes.
    pub mapping: CubeMapping,
    /// Pass-through latency a transit packet pays inside an
    /// intermediate cube's switch (link deser → route → reser), in
    /// core cycles, per hop — on top of link serialization.
    pub forward_latency: u64,
}

impl NetConfig {
    /// Bits of the address that select the cube (`log2(cubes)`).
    pub fn cube_bits(&self) -> u32 {
        debug_assert!(self.cubes.is_power_of_two());
        self.cubes.trailing_zeros()
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            enabled: false,
            cubes: 1,
            topology: NetTopology::DaisyChain,
            placement: MacPlacement::HostOnly,
            mapping: CubeMapping::Interleaved,
            // Switch pass-through ≈ 12 ns (Hadidi et al. measure 9–14 ns
            // per intermediate cube): 40 cycles at 3.3 GHz.
            forward_latency: 40,
        }
    }
}

/// Adaptive coalescer controller bounds and cadence (DESIGN.md §17).
///
/// Disabled by default: a default config runs the fixed Table 1 knobs
/// and is byte-identical to a system built before this struct existed.
/// When enabled, the `AdaptiveController` in `mac-coalescer` observes
/// sampled MAC/device signals every `interval` cycles and may retune
/// the ARQ pop interval, the accept width, and the bypass switch —
/// always inside the min/max bounds declared here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Run the adaptive controller at all.
    pub enabled: bool,
    /// Decision cadence in cycles. Decision points double as event-skip
    /// clamp boundaries, so both run-loop modes land on them exactly.
    pub interval: u64,
    /// Lowest ARQ pop interval the controller may set (fastest drain).
    pub min_pop_interval: u64,
    /// Highest ARQ pop interval the controller may set (deepest merge).
    pub max_pop_interval: u64,
    /// Narrowest accept width the controller may set.
    pub min_accepts: usize,
    /// Widest accept width the controller may set.
    pub max_accepts: usize,
    /// May the controller toggle the 16 B bypass path?
    pub allow_bypass_toggle: bool,
    /// Consecutive-evidence votes required before a retune fires.
    pub evidence_threshold: u32,
    /// Decision intervals the controller holds still after any retune
    /// (hysteresis): at most one retune per `hold_intervals + 1`
    /// intervals.
    pub hold_intervals: u32,
}

impl AdaptConfig {
    /// The controller turned off — the fixed-knob system, byte-identical
    /// to pre-adaptive runs. Same as `AdaptConfig::default()`.
    pub fn disabled() -> Self {
        AdaptConfig::default()
    }

    /// The default bounds with the controller switched on: pop interval
    /// free in 1..=8, accept width in 1..=4, bypass toggling allowed.
    pub fn tuned() -> Self {
        AdaptConfig {
            enabled: true,
            // Responsive enough to retune within a few thousand cycles
            // (short kernels finish in tens of thousands) while the
            // threshold still filters single-window noise.
            interval: 2048,
            hold_intervals: 2,
            // The 16 B bypass dispatches at *pop time*, after the entry
            // already waited out its residency — closing the path can't
            // buy merging, it only reroutes singles through the builder
            // at 64 B. Leave the paper's bypass setting alone.
            allow_bypass_toggle: false,
            ..AdaptConfig::default()
        }
    }
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            enabled: false,
            interval: 8192,
            min_pop_interval: 1,
            max_pop_interval: 8,
            min_accepts: 1,
            max_accepts: 4,
            allow_bypass_toggle: true,
            evidence_threshold: 3,
            hold_intervals: 4,
        }
    }
}

/// Complete system configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core-side (node) parameters.
    pub soc: SocConfig,
    /// MAC coalescer parameters.
    pub mac: MacConfig,
    /// HMC parameters, used when `backend` is [`MemBackend::Hmc`].
    pub hmc: HmcConfig,
    /// HBM parameters, used when `backend` is [`MemBackend::Hbm`].
    pub hbm: HbmConfig,
    /// DDR parameters, used when `backend` is [`MemBackend::Ddr`].
    pub ddr: DdrConfig,
    /// Which 3D-stacked device the node attaches to.
    pub backend: MemBackend,
    /// Run the baseline path (raw 16 B requests straight to the device)
    /// instead of coalescing through the MAC.
    pub mac_disabled: bool,
    /// Multi-cube network parameters (ignored unless `net.enabled`).
    pub net: NetConfig,
    /// Adaptive controller parameters (ignored unless `adapt.enabled`).
    pub adapt: AdaptConfig,
}

impl SystemConfig {
    /// The paper's Table 1 configuration with `threads` hardware threads.
    pub fn paper(threads: usize) -> Self {
        SystemConfig {
            soc: SocConfig {
                threads,
                ..SocConfig::default()
            },
            ..SystemConfig::default()
        }
    }

    /// Same system with the MAC turned off (raw-request baseline).
    pub fn without_mac(mut self) -> Self {
        self.mac_disabled = true;
        self
    }

    /// Same system attached to HBM instead of HMC (§4.3).
    pub fn with_hbm(mut self) -> Self {
        self.backend = MemBackend::Hbm;
        self
    }

    /// Same system attached to a conventional DDR4 channel (§2.2).
    pub fn with_ddr(mut self) -> Self {
        self.backend = MemBackend::Ddr;
        self
    }

    /// Same system attached to a network of `cubes` HMC cubes.
    pub fn with_net(
        mut self,
        cubes: usize,
        topology: NetTopology,
        placement: MacPlacement,
    ) -> Self {
        self.net = NetConfig {
            enabled: true,
            cubes,
            topology,
            placement,
            ..NetConfig::default()
        };
        self
    }

    /// Same system with the adaptive coalescer controller attached.
    pub fn with_adapt(mut self, adapt: AdaptConfig) -> Self {
        self.adapt = adapt;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = SystemConfig::default();
        assert_eq!(c.soc.cores, 8);
        assert_eq!(c.soc.freq_ghz, 3.3);
        assert_eq!(c.soc.spm_bytes, 1 << 20);
        assert_eq!(c.hmc.links, 4);
        assert_eq!(c.hmc.capacity, 8 << 30);
        assert_eq!(c.hmc.row_bytes, 256);
        assert_eq!(c.mac.arq_entries, 32);
        assert_eq!(c.mac.arq_entry_bytes, 64);
    }

    #[test]
    fn hmc_has_512_banks() {
        // §2.2.1: "512 banks in an 8GB HMC".
        assert_eq!(HmcConfig::default().total_banks(), 512);
    }

    #[test]
    fn max_targets_per_entry_is_12() {
        // §5.3.3: 64 B entry - 10 B addr/map = 54 B / 4.5 B = 12 targets.
        assert_eq!(MacConfig::default().max_targets_per_entry(), 12);
    }

    #[test]
    fn arq_bytes_match_figure16() {
        // Figure 16: 8 entries -> 512 B ... 256 entries -> 16 KB.
        for (entries, bytes) in [(8, 512), (16, 1024), (32, 2048), (64, 4096), (256, 16384)] {
            let c = MacConfig {
                arq_entries: entries,
                ..MacConfig::default()
            };
            assert_eq!(c.arq_bytes(), bytes);
        }
    }

    #[test]
    fn uncontended_read_latency_near_93ns() {
        let h = HmcConfig::default();
        // request link (1 FLIT) + logic in + DRAM 16B + logic out +
        // response link (2 FLITs). Precharge (tRP) overlaps the response
        // path, so it is excluded from the observed round trip.
        let flit = h.flit_cycles_x16();
        let cycles = flit.div_ceil(16)
            + h.logic_latency
            + (h.dram_service_cycles(16) - h.t_rp)
            + h.logic_latency
            + (2 * flit).div_ceil(16);
        let ns = cycles as f64 / h.cpu_ghz;
        assert!(
            (85.0..101.0).contains(&ns),
            "uncontended latency {ns:.1} ns not near 93 ns"
        );
    }

    #[test]
    fn paper_config_sets_threads() {
        for t in [2, 4, 8] {
            assert_eq!(SystemConfig::paper(t).soc.threads, t);
        }
        assert!(SystemConfig::paper(8).without_mac().mac_disabled);
    }

    #[test]
    fn net_is_disabled_by_default() {
        let c = SystemConfig::default();
        assert!(!c.net.enabled);
        assert_eq!(c.net.cubes, 1);
        assert_eq!(c.net.cube_bits(), 0);
        assert_eq!(c.hmc.link_select, LinkSelectPolicy::RoundRobin);
    }

    #[test]
    fn with_net_enables_and_sets_shape() {
        let c = SystemConfig::paper(8).with_net(4, NetTopology::Ring, MacPlacement::PerCube);
        assert!(c.net.enabled);
        assert_eq!(c.net.cubes, 4);
        assert_eq!(c.net.cube_bits(), 2);
        assert_eq!(c.net.topology, NetTopology::Ring);
        assert_eq!(c.net.placement, MacPlacement::PerCube);
    }

    #[test]
    fn adapt_is_disabled_by_default_and_bounds_are_sane() {
        let c = SystemConfig::default();
        assert!(!c.adapt.enabled);
        assert_eq!(c.adapt, AdaptConfig::disabled());
        let t = AdaptConfig::tuned();
        assert!(t.enabled);
        assert!(t.min_pop_interval >= 1);
        assert!(t.min_pop_interval <= t.max_pop_interval);
        assert!(t.min_accepts >= 1);
        assert!(t.min_accepts <= t.max_accepts);
        assert!(t.interval >= 1);
        // The default static knobs sit inside the default bounds, so an
        // identity-bounded controller starts from the Table 1 system.
        let m = MacConfig::default();
        assert!((t.min_pop_interval..=t.max_pop_interval).contains(&m.pop_interval));
        assert!((t.min_accepts..=t.max_accepts).contains(&m.accepts_per_cycle));
        let on = SystemConfig::paper(4).with_adapt(AdaptConfig::tuned());
        assert!(on.adapt.enabled);
    }

    #[test]
    fn flit_serialization_cycles_are_positive() {
        let h = HmcConfig::default();
        assert!(h.flit_cycles_x16() > 0);
        // One FLIT at 30 GB/s, 3.3 GHz ~ 1.76 cycles -> 28 in x16 fixed point.
        assert_eq!(h.flit_cycles_x16(), 28);
    }
}
