//! FLIT map and chunk mask (paper §4.1.1 and §4.2, Figures 6 and 8).
//!
//! Every ARQ entry carries a 16-bit **FLIT map** recording which of the 16
//! FLITs in its 256 B DRAM row have been requested. The request builder's
//! first pipeline stage OR-reduces the map into a 4-bit **chunk mask**
//! (one bit per consecutive 64 B chunk), which its second stage feeds into
//! the FLIT table to pick the packet size.

use serde::{Deserialize, Serialize};

use crate::addr::{FLITS_PER_ROW, FLIT_BYTES, ROW_BYTES};

/// Bytes per chunk — the minimum transaction granularity emitted by the
/// request builder (§4.2: "requests from 64B to 256B").
pub const CHUNK_BYTES: u64 = 64;
/// Chunks per 256 B row (4).
pub const CHUNKS_PER_ROW: u64 = ROW_BYTES / CHUNK_BYTES;
/// FLITs per chunk (4).
pub const FLITS_PER_CHUNK: u64 = CHUNK_BYTES / FLIT_BYTES;

/// 16-bit bitmap, one bit per FLIT of a 256 B HMC row (Figure 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlitMap(u16);

impl FlitMap {
    /// Empty map: no FLITs requested yet.
    #[inline]
    pub const fn new() -> Self {
        FlitMap(0)
    }

    /// Map with a single FLIT set.
    #[inline]
    pub const fn single(flit: u8) -> Self {
        FlitMap(1 << (flit & 0xF))
    }

    /// Construct from a raw 16-bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        FlitMap(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Mark one FLIT (`0..16`) as requested.
    #[inline]
    pub fn set(&mut self, flit: u8) {
        debug_assert!(flit < FLITS_PER_ROW as u8);
        self.0 |= 1 << (flit & 0xF);
    }

    /// Whether the given FLIT is marked.
    #[inline]
    pub const fn get(self, flit: u8) -> bool {
        (self.0 >> (flit & 0xF)) & 1 == 1
    }

    /// Number of distinct FLITs requested.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no FLIT has been requested.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Merge another map into this one (union of requested FLITs).
    #[inline]
    pub fn merge(&mut self, other: FlitMap) {
        self.0 |= other.0;
    }

    /// Lowest set FLIT number, if any.
    #[inline]
    pub fn first(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as u8)
        }
    }

    /// Highest set FLIT number, if any.
    #[inline]
    pub fn last(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(15 - self.0.leading_zeros() as u8)
        }
    }

    /// Iterate over the set FLIT numbers in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        let bits = self.0;
        (0..FLITS_PER_ROW as u8).filter(move |&i| (bits >> i) & 1 == 1)
    }

    /// First pipeline stage of the request builder (§4.2, Figure 8):
    /// OR-reduce each group of 4 consecutive FLIT bits into one chunk bit.
    ///
    /// This is the single-cycle operation performed by the 4 OR gates.
    /// Implemented as a branch-free parallel reduction: the four bits of
    /// every nibble are OR-folded onto the nibble's low bit, then the
    /// four low bits are gathered into the 4-bit mask — all 4 nibbles
    /// reduce at once instead of testing them one comparison at a time.
    #[inline]
    pub const fn chunk_mask(self) -> ChunkMask {
        let b = self.0;
        // Fold each nibble onto its bit 0: f has bits 0/4/8/12 set iff
        // the corresponding nibble of `b` is non-zero.
        let f = (b | (b >> 1) | (b >> 2) | (b >> 3)) & 0x1111;
        // Gather bits 0/4/8/12 into bits 0..4.
        ChunkMask(((f | (f >> 3) | (f >> 6) | (f >> 9)) & 0xF) as u8)
    }
}

impl std::fmt::Display for FlitMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016b}", self.0)
    }
}

impl std::ops::BitOr for FlitMap {
    type Output = FlitMap;
    fn bitor(self, rhs: FlitMap) -> FlitMap {
        FlitMap(self.0 | rhs.0)
    }
}

/// 4-bit chunk mask, one bit per 64 B chunk of the row (Figure 8).
///
/// Produced by [`FlitMap::chunk_mask`] and consumed by the FLIT table to
/// select the coalesced request's start chunk and size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkMask(u8);

impl ChunkMask {
    /// Construct from the low 4 bits of `bits`.
    #[inline]
    pub const fn from_bits(bits: u8) -> Self {
        ChunkMask(bits & 0xF)
    }

    /// The raw 4-bit pattern.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Number of active chunks.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no chunk is active.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Index of the first active chunk.
    #[inline]
    pub fn first(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as u8)
        }
    }

    /// Index of the last active chunk.
    #[inline]
    pub fn last(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(3 - (self.0 << 4).leading_zeros() as u8)
        }
    }

    /// Span in chunks from first to last active chunk, inclusive.
    /// Zero for an empty mask.
    #[inline]
    pub fn span(self) -> u8 {
        match (self.first(), self.last()) {
            (Some(f), Some(l)) => l - f + 1,
            _ => 0,
        }
    }
}

impl std::fmt::Display for ChunkMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut m = FlitMap::new();
        assert!(m.is_empty());
        m.set(5);
        assert!(m.get(5));
        assert!(!m.get(4));
        assert_eq!(m.count(), 1);
        m.set(5); // idempotent
        assert_eq!(m.count(), 1);
        m.set(0);
        m.set(15);
        assert_eq!(m.count(), 3);
        assert_eq!(m.first(), Some(0));
        assert_eq!(m.last(), Some(15));
    }

    #[test]
    fn figure6_example_bit5() {
        // Figure 6: FLIT number 5 requested -> bit[5] set.
        let m = FlitMap::single(5);
        assert_eq!(m.bits(), 0b0000_0000_0010_0000);
    }

    #[test]
    fn merge_is_union() {
        let mut a = FlitMap::from_bits(0b0011);
        a.merge(FlitMap::from_bits(0b0110));
        assert_eq!(a.bits(), 0b0111);
    }

    #[test]
    fn iter_yields_sorted_flits() {
        let m = FlitMap::from_bits(0b1000_0001_0010_0000);
        let v: Vec<u8> = m.iter().collect();
        assert_eq!(v, vec![5, 8, 15]);
    }

    #[test]
    fn chunk_mask_figure7_example() {
        // Figure 7: coalesced loads at FLITs 6, 8, 9 -> chunk mask 0110.
        let mut m = FlitMap::new();
        m.set(6);
        m.set(8);
        m.set(9);
        assert_eq!(m.chunk_mask().bits(), 0b0110);
        assert_eq!(m.chunk_mask().span(), 2);
    }

    #[test]
    fn chunk_mask_groups_of_four() {
        assert_eq!(FlitMap::from_bits(0x000F).chunk_mask().bits(), 0b0001);
        assert_eq!(FlitMap::from_bits(0x00F0).chunk_mask().bits(), 0b0010);
        assert_eq!(FlitMap::from_bits(0x0F00).chunk_mask().bits(), 0b0100);
        assert_eq!(FlitMap::from_bits(0xF000).chunk_mask().bits(), 0b1000);
        assert_eq!(FlitMap::from_bits(0xFFFF).chunk_mask().bits(), 0b1111);
        assert_eq!(FlitMap::from_bits(0x0000).chunk_mask().bits(), 0b0000);
    }

    #[test]
    fn chunk_span_and_bounds() {
        let m = ChunkMask::from_bits(0b1001);
        assert_eq!(m.first(), Some(0));
        assert_eq!(m.last(), Some(3));
        assert_eq!(m.span(), 4);
        assert_eq!(ChunkMask::from_bits(0b0100).span(), 1);
        assert_eq!(ChunkMask::from_bits(0).span(), 0);
    }
}
