//! Analytic bandwidth-efficiency model (paper Eq. 1, Figure 3).
//!
//! Every HMC access pays a fixed 32 B of control (one FLIT on the request
//! packet, one on the response). Bandwidth efficiency is the fraction of
//! link traffic that is payload:
//!
//! ```text
//! efficiency = request_size / (request_size + overhead)     (Eq. 1)
//! ```
//!
//! A 16 B access is 33.33 % efficient; a 256 B access is 88.89 % — the
//! 2.67x improvement the paper quotes in §2.2.2.

/// Fixed control overhead per complete memory access (request + response
/// header/tail FLITs), in bytes.
pub const CONTROL_BYTES_PER_ACCESS: u64 = 32;

/// Eq. 1: fraction of link bytes that carry payload for a request of
/// `request_bytes` of data.
#[inline]
pub fn bandwidth_efficiency(request_bytes: u64) -> f64 {
    let s = request_bytes as f64;
    s / (s + CONTROL_BYTES_PER_ACCESS as f64)
}

/// Fraction of link bytes that are control overhead (`1 − efficiency`).
#[inline]
pub fn control_overhead_fraction(request_bytes: u64) -> f64 {
    1.0 - bandwidth_efficiency(request_bytes)
}

/// Total link bytes moved by one access of `request_bytes` payload.
#[inline]
pub fn link_bytes_per_access(request_bytes: u64) -> u64 {
    request_bytes + CONTROL_BYTES_PER_ACCESS
}

/// Aggregate efficiency over a mixed set of accesses: useful payload bytes
/// divided by total link bytes. `accesses` yields `(payload_bytes)` per
/// access.
pub fn aggregate_efficiency<I: IntoIterator<Item = u64>>(accesses: I) -> f64 {
    let (mut useful, mut total) = (0u128, 0u128);
    for payload in accesses {
        useful += payload as u128;
        total += link_bytes_per_access(payload) as u128;
    }
    if total == 0 {
        0.0
    } else {
        useful as f64 / total as f64
    }
}

/// The row of Figure 3 for one request size: `(size, efficiency, overhead)`.
pub fn figure3_row(request_bytes: u64) -> (u64, f64, f64) {
    (
        request_bytes,
        bandwidth_efficiency(request_bytes),
        control_overhead_fraction(request_bytes),
    )
}

/// All HMC request sizes plotted in Figure 3.
pub const FIGURE3_SIZES: [u64; 5] = [16, 32, 64, 128, 256];

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn paper_quoted_efficiencies() {
        // §2.2.2: 16 B -> 33.33 %, 256 B -> 88.89 %, overhead 66.66 % -> 11.11 %.
        assert!(close(bandwidth_efficiency(16), 1.0 / 3.0));
        assert!(close(bandwidth_efficiency(256), 256.0 / 288.0));
        assert!(close(control_overhead_fraction(16), 2.0 / 3.0));
        assert!(close(control_overhead_fraction(256), 32.0 / 288.0));
    }

    #[test]
    fn improvement_factor_is_2_67() {
        let f = bandwidth_efficiency(256) / bandwidth_efficiency(16);
        assert!(close(f, 2.6667));
    }

    #[test]
    fn figure2_worked_example() {
        // §2.2.2: sixteen 16 B requests move 768 B (512 B control); one
        // 256 B request moves 288 B (32 B control).
        assert_eq!(16 * link_bytes_per_access(16), 768);
        assert_eq!(16 * CONTROL_BYTES_PER_ACCESS, 512);
        assert_eq!(link_bytes_per_access(256), 288);
    }

    #[test]
    fn efficiency_monotonically_increases_with_size() {
        let effs: Vec<f64> = FIGURE3_SIZES
            .iter()
            .map(|&s| bandwidth_efficiency(s))
            .collect();
        assert!(effs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn aggregate_matches_uniform_case() {
        let agg = aggregate_efficiency(std::iter::repeat_n(64, 100));
        assert!(close(agg, bandwidth_efficiency(64)));
        assert_eq!(aggregate_efficiency(std::iter::empty()), 0.0);
    }

    #[test]
    fn efficiency_plus_overhead_is_one() {
        for &s in &FIGURE3_SIZES {
            let (_, e, o) = figure3_row(s);
            assert!(close(e + o, 1.0));
        }
    }
}
