//! # mac-types
//!
//! Shared vocabulary types for the reproduction of *MAC: Memory Access
//! Coalescer for 3D-Stacked Memory* (Wang et al., ICPP 2019).
//!
//! This crate defines the data model every other crate in the workspace
//! speaks: the 52-bit physical address layout used by the coalescer
//! (row number / FLIT id / FLIT offset, §4.1 of the paper), the 16-bit
//! FLIT map, raw memory requests carrying their target information
//! (thread id, transaction tag, FLIT id — §4.1.1), assembled HMC request
//! packets, device responses, the analytic bandwidth-efficiency model of
//! Eq. 1, and the configuration structs that mirror Table 1 of the paper.
//!
//! Everything here is plain data: no simulation behaviour lives in this
//! crate. The MAC pipeline is in `mac-coalescer`, the HMC device model in
//! `hmc-model`, and the full-system binding in `mac-sim`.

#![warn(missing_docs)]

pub mod addr;
pub mod bandwidth;
pub mod config;
pub mod fingerprint;
pub mod flit;
pub mod jobid;
pub mod packet;
pub mod request;
pub mod stats;

pub use addr::{CubeId, PhysAddr, RowId, FLITS_PER_ROW, FLIT_BYTES, ROW_BYTES};
pub use bandwidth::{bandwidth_efficiency, control_overhead_fraction, CONTROL_BYTES_PER_ACCESS};
pub use config::{
    AdaptConfig, CubeMapping, DdrConfig, FlitTablePolicy, HbmConfig, HmcConfig, LinkSelectPolicy,
    MacConfig, MacPlacement, MemBackend, NetConfig, NetTopology, SocConfig, SystemConfig,
};
pub use fingerprint::{Fingerprint, Fnv128};
pub use flit::{ChunkMask, FlitMap, CHUNKS_PER_ROW, CHUNK_BYTES, FLITS_PER_CHUNK};
pub use jobid::JobId;
pub use packet::{HmcPacket, PacketKind};
pub use request::{
    HmcRequest, HmcResponse, MemOpKind, NodeId, RawRequest, ReqSize, Target, TransactionId,
};
pub use stats::{Counter, Histogram};

/// Simulation time, measured in CPU clock cycles (3.3 GHz in the paper's
/// Table 1 configuration, i.e. ~0.303 ns per cycle).
pub type Cycle = u64;

/// Convert nanoseconds to CPU cycles at the given core frequency in GHz,
/// rounding up so latencies are never optimistically truncated.
#[inline]
pub fn ns_to_cycles(ns: f64, ghz: f64) -> Cycle {
    (ns * ghz).ceil() as Cycle
}

/// Convert a cycle count back to nanoseconds at the given frequency in GHz.
#[inline]
pub fn cycles_to_ns(cycles: Cycle, ghz: f64) -> f64 {
    cycles as f64 / ghz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_cycle_round_trip_is_close() {
        let ghz = 3.3;
        let c = ns_to_cycles(93.0, ghz);
        // 93 ns at 3.3 GHz is 306.9 cycles; we round up.
        assert_eq!(c, 307);
        let ns = cycles_to_ns(c, ghz);
        assert!((ns - 93.0).abs() < 0.5);
    }

    #[test]
    fn zero_ns_is_zero_cycles() {
        assert_eq!(ns_to_cycles(0.0, 3.3), 0);
    }
}
