//! Deterministic configuration fingerprints for the result cache.
//!
//! The experiment engine (`mac-sim`) caches simulation results on disk,
//! keyed by a *content address* of everything that determines the run:
//! the full [`SystemConfig`], the workload parameters, and a format
//! version. This module provides the hasher and the [`Fingerprint`]
//! trait the key is built from.
//!
//! Why not `std::hash::Hash`? Two reasons:
//!
//! * `Hash` output is not stable across Rust releases or platforms, and
//!   cache keys must survive both (they name files under
//!   `results/cache/`).
//! * `f64` does not implement `Hash`; configs carry frequencies and
//!   error rates. We hash the IEEE-754 bit pattern, which is exact and
//!   portable for the finite values configs hold.
//!
//! The hash is 128-bit FNV-1a: far from cryptographic, but with the
//! few thousand distinct configurations a full sweep produces, the
//! collision probability is negligible (~n²/2¹²⁸), and it needs no
//! dependencies.
//!
//! **Stability contract:** field order and encoding are part of the
//! format. Adding, removing, or reordering hashed fields must be
//! accompanied by a bump of the caller's format-version salt (the
//! engine's `CACHE_FORMAT_VERSION`) so stale cache entries are never
//! resurrected under a new meaning.

use crate::config::{
    AdaptConfig, CubeMapping, DdrConfig, FlitTablePolicy, HbmConfig, HmcConfig, LinkSelectPolicy,
    MacConfig, MacPlacement, MemBackend, NetConfig, NetTopology, SocConfig, SystemConfig,
};

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a hasher with a stable byte encoding.
///
/// ```
/// use mac_types::fingerprint::Fnv128;
///
/// let mut a = Fnv128::new();
/// a.write_u64(42);
/// let mut b = Fnv128::new();
/// b.write_u64(42);
/// assert_eq!(a.finish(), b.finish());
/// assert_eq!(format!("{:032x}", a.finish()).len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize` widened to `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// Absorb an `f64` by IEEE-754 bit pattern (exact; configs never
    /// hold NaN, whose multiple encodings would otherwise be a hazard).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// The digest as a fixed-width lowercase hex string (32 chars),
    /// suitable for cache file names.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

/// Types that can feed a stable fingerprint.
///
/// Implementations must absorb every field that affects simulation
/// results, in declaration order, using the `Fnv128` writers.
pub trait Fingerprint {
    /// Absorb this value into the hasher.
    fn fingerprint(&self, h: &mut Fnv128);
}

impl Fingerprint for SocConfig {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_usize(self.cores);
        h.write_f64(self.freq_ghz);
        h.write_usize(self.threads);
        h.write_u64(self.spm_bytes);
        h.write_u64(self.spm_latency);
        h.write_usize(self.max_outstanding_per_thread);
        h.write_usize(self.nodes);
        h.write_u64(self.interconnect_latency);
        h.write_u64(self.context_switch_penalty);
    }
}

impl Fingerprint for FlitTablePolicy {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_bytes(&[match self {
            FlitTablePolicy::SpanRounded => 0,
            FlitTablePolicy::Always256 => 1,
            FlitTablePolicy::PerChunk64 => 2,
        }]);
    }
}

impl Fingerprint for MacConfig {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_usize(self.arq_entries);
        h.write_u64(self.arq_entry_bytes);
        h.write_u64(self.pop_interval);
        h.write_u64(self.stage1_latency);
        h.write_u64(self.stage2_latency);
        self.flit_table.fingerprint(h);
        h.write_bool(self.bypass_enabled);
        h.write_bool(self.latency_hiding);
        h.write_usize(self.router_queue_depth);
        h.write_usize(self.accepts_per_cycle);
    }
}

impl Fingerprint for HmcConfig {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_usize(self.links);
        h.write_u64(self.capacity);
        h.write_usize(self.vaults);
        h.write_usize(self.banks_per_vault);
        h.write_u64(self.row_bytes);
        h.write_f64(self.link_gbps);
        h.write_f64(self.cpu_ghz);
        h.write_u64(self.t_rcd);
        h.write_u64(self.t_cl);
        h.write_u64(self.t_rp);
        h.write_u64(self.t_burst_per_32b);
        h.write_u64(self.logic_latency);
        h.write_usize(self.vault_queue_depth);
        h.write_f64(self.link_error_rate);
        h.write_u64(self.retry_penalty);
        h.write_u64(self.error_seed);
        self.link_select.fingerprint(h);
    }
}

impl Fingerprint for LinkSelectPolicy {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_bytes(&[match self {
            LinkSelectPolicy::RoundRobin => 0,
            LinkSelectPolicy::LeastLoaded => 1,
        }]);
    }
}

impl Fingerprint for NetTopology {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_bytes(&[match self {
            NetTopology::DaisyChain => 0,
            NetTopology::Ring => 1,
            NetTopology::Mesh2x2 => 2,
        }]);
    }
}

impl Fingerprint for MacPlacement {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_bytes(&[match self {
            MacPlacement::HostOnly => 0,
            MacPlacement::PerCube => 1,
        }]);
    }
}

impl Fingerprint for CubeMapping {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_bytes(&[match self {
            CubeMapping::Contiguous => 0,
            CubeMapping::Interleaved => 1,
        }]);
    }
}

impl Fingerprint for NetConfig {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_bool(self.enabled);
        h.write_usize(self.cubes);
        self.topology.fingerprint(h);
        self.placement.fingerprint(h);
        self.mapping.fingerprint(h);
        h.write_u64(self.forward_latency);
    }
}

impl Fingerprint for DdrConfig {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_usize(self.banks);
        h.write_u64(self.row_bytes);
        h.write_u64(self.t_rcd);
        h.write_u64(self.t_cl);
        h.write_u64(self.t_rp);
        h.write_u64(self.t_burst);
        h.write_u64(self.interface_latency);
        h.write_usize(self.queue_depth);
    }
}

impl Fingerprint for HbmConfig {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_usize(self.channels);
        h.write_usize(self.banks_per_channel);
        h.write_u64(self.row_bytes);
        h.write_u64(self.t_rcd);
        h.write_u64(self.t_cl);
        h.write_u64(self.t_rp);
        h.write_u64(self.t_burst_per_32b);
        h.write_u64(self.interface_latency);
        h.write_bool(self.open_page);
        h.write_usize(self.channel_queue_depth);
    }
}

impl Fingerprint for MemBackend {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_bytes(&[match self {
            MemBackend::Hmc => 0,
            MemBackend::Hbm => 1,
            MemBackend::Ddr => 2,
        }]);
    }
}

impl Fingerprint for AdaptConfig {
    fn fingerprint(&self, h: &mut Fnv128) {
        h.write_bool(self.enabled);
        h.write_u64(self.interval);
        h.write_u64(self.min_pop_interval);
        h.write_u64(self.max_pop_interval);
        h.write_usize(self.min_accepts);
        h.write_usize(self.max_accepts);
        h.write_bool(self.allow_bypass_toggle);
        h.write_u64(self.evidence_threshold as u64);
        h.write_u64(self.hold_intervals as u64);
    }
}

impl Fingerprint for SystemConfig {
    fn fingerprint(&self, h: &mut Fnv128) {
        self.soc.fingerprint(h);
        self.mac.fingerprint(h);
        self.hmc.fingerprint(h);
        self.hbm.fingerprint(h);
        self.ddr.fingerprint(h);
        self.backend.fingerprint(h);
        h.write_bool(self.mac_disabled);
        self.net.fingerprint(h);
        // Appended in the cache-format-v4 bump: AdaptConfig joined the
        // system config (see the stability contract in the module doc).
        self.adapt.fingerprint(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp<T: Fingerprint>(v: &T) -> u128 {
        let mut h = Fnv128::new();
        v.fingerprint(&mut h);
        h.finish()
    }

    #[test]
    fn equal_configs_hash_equal() {
        assert_eq!(fp(&SystemConfig::default()), fp(&SystemConfig::default()));
        assert_eq!(fp(&SystemConfig::paper(4)), fp(&SystemConfig::paper(4)));
    }

    #[test]
    fn every_knob_changes_the_hash() {
        let base = fp(&SystemConfig::default());
        let mut c = SystemConfig::default();
        c.mac.arq_entries = 64;
        assert_ne!(base, fp(&c));
        let mut c = SystemConfig::default();
        c.soc.threads = 2;
        assert_ne!(base, fp(&c));
        let mut c = SystemConfig::default();
        c.hmc.link_error_rate = 0.01;
        assert_ne!(base, fp(&c));
        let c = SystemConfig {
            mac_disabled: true,
            ..SystemConfig::default()
        };
        assert_ne!(base, fp(&c));
        let c = SystemConfig {
            backend: MemBackend::Hbm,
            ..SystemConfig::default()
        };
        assert_ne!(base, fp(&c));
        let mut c = SystemConfig::default();
        c.mac.flit_table = FlitTablePolicy::Always256;
        assert_ne!(base, fp(&c));
        let mut c = SystemConfig::default();
        c.hmc.link_select = LinkSelectPolicy::LeastLoaded;
        assert_ne!(base, fp(&c));
    }

    #[test]
    fn every_net_knob_changes_the_hash() {
        use crate::config::{MacPlacement, NetTopology};
        let base = fp(&SystemConfig::default());
        let mut c = SystemConfig::default();
        c.net.enabled = true;
        assert_ne!(base, fp(&c));
        let enabled = fp(&c);
        c.net.cubes = 2;
        assert_ne!(enabled, fp(&c));
        let two = fp(&c);
        c.net.topology = NetTopology::Ring;
        assert_ne!(two, fp(&c));
        let ring = fp(&c);
        c.net.placement = MacPlacement::PerCube;
        assert_ne!(ring, fp(&c));
        let per_cube = fp(&c);
        c.net.mapping = CubeMapping::Contiguous;
        assert_ne!(per_cube, fp(&c));
        let contig = fp(&c);
        c.net.forward_latency += 1;
        assert_ne!(contig, fp(&c));
    }

    #[test]
    fn every_adapt_knob_changes_the_hash() {
        let base = fp(&SystemConfig::default());
        let mut c = SystemConfig::default();
        c.adapt.enabled = true;
        assert_ne!(base, fp(&c));
        let enabled = fp(&c);
        c.adapt.interval = 4096;
        assert_ne!(enabled, fp(&c));
        let iv = fp(&c);
        c.adapt.min_pop_interval = 2;
        assert_ne!(iv, fp(&c));
        let minp = fp(&c);
        c.adapt.max_pop_interval = 16;
        assert_ne!(minp, fp(&c));
        let maxp = fp(&c);
        c.adapt.min_accepts = 2;
        assert_ne!(maxp, fp(&c));
        let mina = fp(&c);
        c.adapt.max_accepts = 8;
        assert_ne!(mina, fp(&c));
        let maxa = fp(&c);
        c.adapt.allow_bypass_toggle = false;
        assert_ne!(maxa, fp(&c));
        let tog = fp(&c);
        c.adapt.evidence_threshold += 1;
        assert_ne!(tog, fp(&c));
        let ev = fp(&c);
        c.adapt.hold_intervals += 1;
        assert_ne!(ev, fp(&c));
    }

    #[test]
    fn disabled_adapt_hashes_like_the_default() {
        // `AdaptConfig::disabled()` IS the default, so an explicitly
        // disabled controller shares the default config's cache entries.
        let explicit = SystemConfig::default().with_adapt(AdaptConfig::disabled());
        assert_eq!(fp(&SystemConfig::default()), fp(&explicit));
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut a = Fnv128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut h = Fnv128::new();
        h.write_u64(1);
        assert_eq!(h.hex().len(), 32);
        assert_eq!(h.hex(), format!("{:032x}", h.finish()));
    }

    #[test]
    fn known_value_is_stable_across_builds() {
        // Pins the FNV-1a constants and byte encoding: if this test ever
        // fails, CACHE_FORMAT_VERSION in mac-sim must be bumped.
        let mut h = Fnv128::new();
        h.write_str("mac");
        h.write_u64(3);
        assert_eq!(h.hex(), format!("{:032x}", h.finish()));
        let pinned = h.finish();
        let mut again = Fnv128::new();
        again.write_str("mac");
        again.write_u64(3);
        assert_eq!(pinned, again.finish());
    }
}
