//! Job identifiers for the simulation-as-a-service layer (`mac-serve`).
//!
//! A job's identity *is* its content address: the same 128-bit
//! [fingerprint](crate::fingerprint) the result cache is keyed by. Two
//! clients submitting byte-equivalent work therefore ask for the same
//! [`JobId`], which is what lets the server dedupe submissions in flight
//! and serve warm results from the shared artifact store without any
//! coordination protocol between clients.
//!
//! The wire/text form is the same fixed-width lowercase hex used by the
//! cache file names (`sim-<32 hex>.mrc`), so a job id can be grepped
//! straight from `results/`.

use std::fmt;
use std::str::FromStr;

/// A content-addressed job identifier: a 128-bit configuration
/// fingerprint rendered as 32 lowercase hex digits.
///
/// ```
/// use mac_types::JobId;
///
/// let id = JobId::from(0xdeadbeefu128);
/// let text = id.to_string();
/// assert_eq!(text.len(), 32);
/// assert_eq!(text.parse::<JobId>().unwrap(), id);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u128);

impl JobId {
    /// The raw 128-bit fingerprint.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl From<u128> for JobId {
    fn from(fp: u128) -> Self {
        JobId(fp)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Why a [`JobId`] failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJobIdError;

impl fmt::Display for ParseJobIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job id must be exactly 32 lowercase hex digits")
    }
}

impl std::error::Error for ParseJobIdError {}

impl FromStr for JobId {
    type Err = ParseJobIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseJobIdError);
        }
        u128::from_str_radix(s, 16)
            .map(JobId)
            .map_err(|_| ParseJobIdError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_is_fixed_width() {
        for fp in [0u128, 1, u128::MAX, 0xdead_beef_cafe] {
            let id = JobId::from(fp);
            let text = id.to_string();
            assert_eq!(text.len(), 32);
            assert_eq!(text.parse::<JobId>().unwrap(), id);
        }
    }

    #[test]
    fn rejects_malformed_ids() {
        assert!("".parse::<JobId>().is_err());
        assert!("abc".parse::<JobId>().is_err());
        assert!("zz000000000000000000000000000000".parse::<JobId>().is_err());
        assert!("0123456789abcdef0123456789abcdef0"
            .parse::<JobId>()
            .is_err());
    }
}
