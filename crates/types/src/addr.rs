//! Physical address layout used by the MAC (paper §4.1, Figure 5).
//!
//! The coalescer partitions a 52-bit physical address into:
//!
//! ```text
//!  51                 8 7      4 3       0
//! +---------------------+--------+---------+
//! |      row number     | FLIT # | FLIT off|
//! +---------------------+--------+---------+
//! ```
//!
//! * bits `0..=3` — byte offset inside a 16 B FLIT (ignored by the MAC,
//!   since the HMC's minimum transaction granularity is one FLIT);
//! * bits `4..=7` — FLIT number within the 256 B HMC DRAM row;
//! * bits `8..=51` — row number (the concatenated vault/bank/DRAM bits).
//!
//! The aggregator additionally extends addresses with two bits (§4.1.2):
//! the `T` bit (bit 52) distinguishing stores from loads so a single CAM
//! comparison covers both address and type, and the `B` bit flagging
//! entries that can bypass the request builder. Those live on the ARQ
//! entry (`mac-coalescer`), not on the address itself; here we provide the
//! `tagged_row` helper that produces the `{T, row}` comparison key.

use serde::{Deserialize, Serialize};

/// Bytes per FLIT (FLow control unIT), the HMC protocol's basic data unit.
pub const FLIT_BYTES: u64 = 16;
/// Bytes per HMC DRAM row in the paper's configuration (HMC 2.1, 256 B).
pub const ROW_BYTES: u64 = 256;
/// FLITs per DRAM row (256 / 16 = 16), one bit each in the FLIT map.
pub const FLITS_PER_ROW: u64 = ROW_BYTES / FLIT_BYTES;

/// Number of physical address bits (§4.1.2: "current 64-bit architectures
/// use up to 52 bits to represent physical addresses").
pub const PHYS_ADDR_BITS: u32 = 52;
/// Low bit of the FLIT-number field.
pub const FLIT_SHIFT: u32 = 4;
/// Low bit of the row-number field.
pub const ROW_SHIFT: u32 = 8;

/// Mask of valid physical address bits.
pub const PHYS_ADDR_MASK: u64 = (1 << PHYS_ADDR_BITS) - 1;

/// A 52-bit physical address.
///
/// Constructed from a raw `u64`; bits above bit 51 are stripped, mirroring
/// hardware that simply does not wire them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Wrap a raw address, truncating to 52 bits.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw & PHYS_ADDR_MASK)
    }

    /// The raw 52-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Row number: bits 8..=51, identifying one 256 B HMC DRAM row.
    #[inline]
    pub const fn row(self) -> RowId {
        RowId(self.0 >> ROW_SHIFT)
    }

    /// FLIT number within the row: bits 4..=7, in `0..16`.
    #[inline]
    pub const fn flit(self) -> u8 {
        ((self.0 >> FLIT_SHIFT) & 0xF) as u8
    }

    /// Byte offset within the FLIT: bits 0..=3.
    #[inline]
    pub const fn flit_offset(self) -> u8 {
        (self.0 & 0xF) as u8
    }

    /// Byte offset within the 256 B row (bits 0..=7).
    #[inline]
    pub const fn row_offset(self) -> u16 {
        (self.0 & (ROW_BYTES - 1)) as u16
    }

    /// The address of the first byte of this address's row.
    #[inline]
    pub const fn row_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(ROW_BYTES - 1))
    }

    /// The address of the first byte of this address's FLIT.
    #[inline]
    pub const fn flit_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(FLIT_BYTES - 1))
    }

    /// Rebuild an address from a row id and a FLIT number.
    #[inline]
    pub const fn from_row_flit(row: RowId, flit: u8) -> Self {
        PhysAddr::new((row.0 << ROW_SHIFT) | ((flit as u64 & 0xF) << FLIT_SHIFT))
    }

    /// Comparison key used by the ARQ CAM: `{T bit, row number}` packed in
    /// one word so loads and stores to the same row never alias (§4.1.2).
    #[inline]
    pub const fn tagged_row(self, is_store: bool) -> u64 {
        (self.0 >> ROW_SHIFT) | ((is_store as u64) << (PHYS_ADDR_BITS - ROW_SHIFT))
    }

    /// Add a byte offset, truncating into the 52-bit space.
    #[inline]
    pub const fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr::new(self.0.wrapping_add(bytes))
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr::new(raw)
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#013x}", self.0)
    }
}

/// Identifier of one cube in a multi-cube HMC network.
///
/// The cube id is not a fixed bit field of [`PhysAddr`]: it is carved
/// out of the 52-bit address by the network address map according to
/// [`crate::config::CubeMapping`] — either the high-order capacity bits
/// (`Contiguous`) or the bits just above the vault/bank interleave
/// (`Interleaved`). A single-cube system has zero cube bits and every
/// address maps to `CubeId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CubeId(pub u16);

impl CubeId {
    /// The host-attached cube (and the only cube when the net is off).
    pub const HOST: CubeId = CubeId(0);
}

impl std::fmt::Display for CubeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cube:{}", self.0)
    }
}

/// Identifier of one 256 B HMC DRAM row (the unit of coalescing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl RowId {
    /// Address of the first byte in this row.
    #[inline]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr::new(self.0 << ROW_SHIFT)
    }
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "row:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_matches_figure5() {
        // Row 0xA, FLIT 6, offset 3 -> figure 7's request #1 style address.
        let a = PhysAddr::new((0xA << 8) | (6 << 4) | 3);
        assert_eq!(a.row(), RowId(0xA));
        assert_eq!(a.flit(), 6);
        assert_eq!(a.flit_offset(), 3);
        assert_eq!(a.row_offset(), 0x63);
    }

    #[test]
    fn addresses_truncate_to_52_bits() {
        let a = PhysAddr::new(u64::MAX);
        assert_eq!(a.raw(), PHYS_ADDR_MASK);
        assert_eq!(a.row().0, PHYS_ADDR_MASK >> 8);
    }

    #[test]
    fn row_base_and_flit_base_align() {
        let a = PhysAddr::new(0x1234_5678_9ABC);
        assert_eq!(a.row_base().raw() % ROW_BYTES, 0);
        assert_eq!(a.flit_base().raw() % FLIT_BYTES, 0);
        assert_eq!(a.row_base().row(), a.row());
        assert_eq!(a.flit_base().flit(), a.flit());
    }

    #[test]
    fn from_row_flit_round_trips() {
        let row = RowId(0xDEAD_BEEF);
        for flit in 0..16u8 {
            let a = PhysAddr::from_row_flit(row, flit);
            assert_eq!(a.row(), row);
            assert_eq!(a.flit(), flit);
            assert_eq!(a.flit_offset(), 0);
        }
    }

    #[test]
    fn tagged_row_distinguishes_loads_from_stores() {
        let a = PhysAddr::new(0xA00);
        assert_ne!(a.tagged_row(false), a.tagged_row(true));
        // Same row, same type: equal keys regardless of FLIT offset.
        let b = PhysAddr::new(0xAF7);
        assert_eq!(a.tagged_row(false), b.tagged_row(false));
    }

    #[test]
    fn tagged_row_type_bit_sits_above_row_bits() {
        // The maximum possible row number must not collide with the T bit.
        let max = PhysAddr::new(PHYS_ADDR_MASK);
        let small = PhysAddr::new(0);
        assert_ne!(max.tagged_row(false), small.tagged_row(true));
        assert!(max.tagged_row(false) < small.tagged_row(true) + (1 << 44));
    }

    #[test]
    fn sixteen_flits_cover_one_row() {
        let base = PhysAddr::new(0x4_0000);
        let rows: std::collections::HashSet<_> =
            (0..16).map(|i| base.offset(i * FLIT_BYTES).row()).collect();
        assert_eq!(rows.len(), 1);
        let next = base.offset(16 * FLIT_BYTES);
        assert_ne!(next.row(), base.row());
    }
}
