//! Raw memory requests, coalesced HMC requests, and responses.
//!
//! A **raw request** is what a core emits: one FLIT-granular load, store,
//! atomic, or fence, tagged with its *target information* (§4.1.1): thread
//! id (2 B), transaction tag (2 B), and requested FLIT id (4 bits) — 4.5 B
//! per target in the paper's accounting.
//!
//! An **HMC request** is what the MAC (or the bypass path) dispatches to
//! the device: a packetized transaction of 16–256 B carrying the targets of
//! every raw request it satisfies, so the response router can deliver data
//! back to the originating threads.

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::flit::FlitMap;
use crate::Cycle;

/// Identifies a node in the multi-node NUMA system of Figure 4.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub u16);

/// Globally unique id assigned to each raw request by the simulator, used
/// to track per-request latency end to end. (Not a hardware structure.)
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TransactionId(pub u64);

impl TransactionId {
    /// Bits of the id reserved for the per-node sequence number; the
    /// originating node occupies the bits above.
    pub const SEQ_BITS: u32 = 48;

    /// Compose an id from its originating node and per-node sequence
    /// number (the encoding `soc_sim::Node` uses when issuing).
    #[inline]
    pub const fn compose(node: u16, seq: u64) -> Self {
        TransactionId(((node as u64) << Self::SEQ_BITS) | (seq & ((1 << Self::SEQ_BITS) - 1)))
    }

    /// The node that issued this request. Conformance checking relies on
    /// this being recoverable from the id alone, so responses can be
    /// attributed without side tables.
    #[inline]
    pub const fn origin_node(self) -> u16 {
        (self.0 >> Self::SEQ_BITS) as u16
    }

    /// Issue-order sequence number within the originating node.
    #[inline]
    pub const fn local_seq(self) -> u64 {
        self.0 & ((1 << Self::SEQ_BITS) - 1)
    }
}

/// Kind of memory operation carried by a raw request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOpKind {
    /// Read of one FLIT.
    Load,
    /// Write of one FLIT.
    Store,
    /// Atomic read-modify-write. Never coalesced: routed directly to the
    /// device to preserve atomicity (§4.1.2).
    Atomic,
    /// Memory fence. Disables ARQ comparators until it drains (§4.1).
    Fence,
}

impl MemOpKind {
    /// Whether the ARQ may merge this operation with others.
    #[inline]
    pub const fn coalescable(self) -> bool {
        matches!(self, MemOpKind::Load | MemOpKind::Store)
    }

    /// The `T` bit of §4.1.2: 0 for loads, 1 for stores. Meaningless for
    /// atomics and fences, which never enter a CAM comparison.
    #[inline]
    pub const fn type_bit(self) -> bool {
        matches!(self, MemOpKind::Store)
    }

    /// True for operations that expect data back (loads and atomics).
    #[inline]
    pub const fn expects_data(self) -> bool {
        matches!(self, MemOpKind::Load | MemOpKind::Atomic)
    }
}

/// Target information stored per merged raw request (§4.1.1, Figure 6):
/// 2 B thread id + 2 B transaction tag + 4-bit FLIT id = 4.5 B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Target {
    /// Originating hardware thread (up to 64 K threads).
    pub tid: u16,
    /// Per-thread transaction tag (up to 64 K outstanding per thread).
    pub tag: u16,
    /// Which FLIT of the row this target requested (`0..16`).
    pub flit: u8,
}

impl Target {
    /// Size in bytes of one target record as accounted by the paper.
    pub const BYTES: f64 = 4.5;
}

/// A raw, FLIT-granular memory request as emitted by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRequest {
    /// Simulator-assigned unique id (latency tracking).
    pub id: TransactionId,
    /// Physical address of the accessed word.
    pub addr: PhysAddr,
    /// Operation kind.
    pub kind: MemOpKind,
    /// Originating node (for the NUMA request router of §3.1).
    pub node: NodeId,
    /// Node owning the addressed memory (home node).
    pub home: NodeId,
    /// Target information used to route the response back.
    pub target: Target,
    /// Cycle at which the core issued this request.
    pub issued_at: Cycle,
}

impl RawRequest {
    /// Whether this request is local to its home node's memory device.
    #[inline]
    pub const fn is_local(&self) -> bool {
        self.node.0 == self.home.0
    }

    /// The ARQ CAM comparison key (`{T, row}`; §4.1.2).
    #[inline]
    pub const fn tagged_row(&self) -> u64 {
        self.addr.tagged_row(self.kind.type_bit())
    }
}

/// Size of a coalesced HMC request transaction as emitted by the request
/// builder (§4.2: 64–256 B) or by the bypass path (16 B single-FLIT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReqSize {
    /// Single FLIT, 16 B — only produced by the `B`-bit bypass path.
    B16,
    /// Two FLITs, 32 B — produced when HMC-1.0 compatibility mode caps
    /// builder output (not used in the default configuration).
    B32,
    /// One chunk, 64 B.
    B64,
    /// Two chunks, 128 B.
    B128,
    /// Full row, 256 B.
    B256,
}

impl ReqSize {
    /// Data payload in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            ReqSize::B16 => 16,
            ReqSize::B32 => 32,
            ReqSize::B64 => 64,
            ReqSize::B128 => 128,
            ReqSize::B256 => 256,
        }
    }

    /// Data payload in FLITs.
    #[inline]
    pub const fn flits(self) -> u64 {
        self.bytes() / 16
    }

    /// Smallest `ReqSize` whose payload is at least `bytes`.
    pub fn at_least(bytes: u64) -> ReqSize {
        match bytes {
            0..=16 => ReqSize::B16,
            17..=32 => ReqSize::B32,
            33..=64 => ReqSize::B64,
            65..=128 => ReqSize::B128,
            _ => ReqSize::B256,
        }
    }
}

/// A coalesced (or bypassed) request transaction bound for the HMC device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HmcRequest {
    /// Start address of the transaction (FLIT-aligned; chunk-aligned for
    /// builder output).
    pub addr: PhysAddr,
    /// Payload size.
    pub size: ReqSize,
    /// `true` for writes (all merged operations share the `T` bit).
    pub is_write: bool,
    /// `true` if this request is an atomic forwarded on the bypass path.
    pub is_atomic: bool,
    /// FLITs of the row actually requested by raw requests — the "useful"
    /// subset of the payload, used for data-utilization accounting.
    pub flit_map: FlitMap,
    /// Targets of every merged raw request, in arrival order.
    pub targets: Vec<Target>,
    /// Transaction ids of every merged raw request (parallel to `targets`).
    pub raw_ids: Vec<TransactionId>,
    /// Cycle at which the MAC dispatched this transaction.
    pub dispatched_at: Cycle,
}

impl HmcRequest {
    /// Number of raw requests satisfied by this transaction.
    #[inline]
    pub fn merged_count(&self) -> usize {
        self.raw_ids.len()
    }

    /// Useful bytes: FLITs actually requested x 16 B.
    #[inline]
    pub fn useful_bytes(&self) -> u64 {
        match self.size {
            // Bypass path: the single FLIT is the whole payload.
            ReqSize::B16 => 16,
            _ => u64::from(self.flit_map.count()) * 16,
        }
    }
}

/// A response returned by the HMC device for one request transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HmcResponse {
    /// Echo of the request's start address.
    pub addr: PhysAddr,
    /// Echo of the request's size (drives response packet length).
    pub size: ReqSize,
    /// Whether the original request was a write (write responses carry no
    /// data payload, only the 1-FLIT completion).
    pub is_write: bool,
    /// Targets to deliver data (or completion) to.
    pub targets: Vec<Target>,
    /// Raw transaction ids completed by this response.
    pub raw_ids: Vec<TransactionId>,
    /// Cycle at which the device completed the access.
    pub completed_at: Cycle,
    /// Bank conflicts this access experienced inside the device.
    pub conflicts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RowId;

    fn raw(addr: u64, kind: MemOpKind) -> RawRequest {
        RawRequest {
            id: TransactionId(1),
            addr: PhysAddr::new(addr),
            kind,
            node: NodeId(0),
            home: NodeId(0),
            target: Target {
                tid: 0,
                tag: 0,
                flit: PhysAddr::new(addr).flit(),
            },
            issued_at: 0,
        }
    }

    #[test]
    fn kinds_classify_correctly() {
        assert!(MemOpKind::Load.coalescable());
        assert!(MemOpKind::Store.coalescable());
        assert!(!MemOpKind::Atomic.coalescable());
        assert!(!MemOpKind::Fence.coalescable());
        assert!(!MemOpKind::Load.type_bit());
        assert!(MemOpKind::Store.type_bit());
        assert!(MemOpKind::Load.expects_data());
        assert!(MemOpKind::Atomic.expects_data());
        assert!(!MemOpKind::Store.expects_data());
    }

    #[test]
    fn tagged_row_separates_types_like_figure7() {
        // Figure 7: request 3 is a store to row 0xA; requests 1/2/4 are
        // loads to row 0xA. They must not compare equal in the CAM.
        let load = raw(0xA60, MemOpKind::Load);
        let store = raw(0xA70, MemOpKind::Store);
        assert_eq!(load.addr.row(), RowId(0xA));
        assert_eq!(store.addr.row(), RowId(0xA));
        assert_ne!(load.tagged_row(), store.tagged_row());
    }

    #[test]
    fn req_size_bytes_and_flits() {
        assert_eq!(ReqSize::B16.flits(), 1);
        assert_eq!(ReqSize::B64.flits(), 4);
        assert_eq!(ReqSize::B128.flits(), 8);
        assert_eq!(ReqSize::B256.flits(), 16);
        assert_eq!(ReqSize::at_least(1), ReqSize::B16);
        assert_eq!(ReqSize::at_least(65), ReqSize::B128);
        assert_eq!(ReqSize::at_least(999), ReqSize::B256);
    }

    #[test]
    fn useful_bytes_counts_requested_flits_only() {
        let mut fm = FlitMap::new();
        fm.set(6);
        fm.set(8);
        fm.set(9);
        let req = HmcRequest {
            addr: PhysAddr::new(0xA40),
            size: ReqSize::B128,
            is_write: false,
            is_atomic: false,
            flit_map: fm,
            targets: vec![],
            raw_ids: vec![],
            dispatched_at: 0,
        };
        assert_eq!(req.useful_bytes(), 48);
    }

    #[test]
    fn transaction_id_round_trips_origin_and_seq() {
        let id = TransactionId::compose(7, 0x1234);
        assert_eq!(id.origin_node(), 7);
        assert_eq!(id.local_seq(), 0x1234);
        assert_eq!(id, TransactionId((7u64 << 48) | 0x1234));
        let max = TransactionId::compose(u16::MAX, (1 << 48) - 1);
        assert_eq!(max.origin_node(), u16::MAX);
        assert_eq!(max.local_seq(), (1 << 48) - 1);
    }

    #[test]
    fn locality_is_node_vs_home() {
        let mut r = raw(0x100, MemOpKind::Load);
        assert!(r.is_local());
        r.home = NodeId(3);
        assert!(!r.is_local());
    }
}
