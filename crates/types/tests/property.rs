//! Property-based tests of the foundational types: the address layout,
//! FLIT-map algebra, packet wire format, and the Eq. 1 model.

use proptest::prelude::*;

use mac_types::packet::{HmcPacket, PacketKind};
use mac_types::{
    bandwidth_efficiency, ChunkMask, FlitMap, PhysAddr, ReqSize, CONTROL_BYTES_PER_ACCESS,
};

fn arb_addr() -> impl Strategy<Value = u64> {
    0u64..(1 << 52)
}

proptest! {
    /// The three address fields fully reconstruct the FLIT-aligned address.
    #[test]
    fn address_fields_reconstruct(raw in arb_addr()) {
        let a = PhysAddr::new(raw);
        let rebuilt = (a.row().0 << 8) | ((a.flit() as u64) << 4) | a.flit_offset() as u64;
        prop_assert_eq!(rebuilt, a.raw());
        prop_assert_eq!(PhysAddr::from_row_flit(a.row(), a.flit()), a.flit_base());
        prop_assert!(a.flit() < 16);
        prop_assert!(a.row_offset() < 256);
    }

    /// Addresses in the same row share a tagged key per type; addresses
    /// in different rows never share one.
    #[test]
    fn tagged_row_is_row_injective(a in arb_addr(), b in arb_addr(), store in any::<bool>()) {
        let (pa, pb) = (PhysAddr::new(a), PhysAddr::new(b));
        if pa.row() == pb.row() {
            prop_assert_eq!(pa.tagged_row(store), pb.tagged_row(store));
        } else {
            prop_assert_ne!(pa.tagged_row(store), pb.tagged_row(store));
        }
        prop_assert_ne!(pa.tagged_row(true), pb.tagged_row(false));
    }

    /// FLIT-map union is commutative, associative, idempotent, and the
    /// chunk-mask reduction is a homomorphism onto 4-bit OR.
    #[test]
    fn flit_map_algebra(x in any::<u16>(), y in any::<u16>(), z in any::<u16>()) {
        let (a, b, c) = (FlitMap::from_bits(x), FlitMap::from_bits(y), FlitMap::from_bits(z));
        prop_assert_eq!((a | b).bits(), (b | a).bits());
        prop_assert_eq!(((a | b) | c).bits(), (a | (b | c)).bits());
        prop_assert_eq!((a | a).bits(), a.bits());
        prop_assert_eq!(
            (a | b).chunk_mask().bits(),
            a.chunk_mask().bits() | b.chunk_mask().bits()
        );
        // Count is the number of iterated FLITs.
        prop_assert_eq!(a.count() as usize, a.iter().count());
        // first/last bound every set bit.
        if let (Some(f), Some(l)) = (a.first(), a.last()) {
            for flit in a.iter() {
                prop_assert!(f <= flit && flit <= l);
            }
        }
    }

    /// Chunk-mask span always covers the count.
    #[test]
    fn chunk_span_bounds_count(bits in 0u8..16) {
        let m = ChunkMask::from_bits(bits);
        prop_assert!(m.span() >= m.count() as u8);
        prop_assert!(m.span() <= 4);
    }

    /// Packet headers round-trip through the wire format for every kind
    /// and size, and corrupting any byte is detected by the CRC.
    #[test]
    fn packet_round_trip_and_crc(
        addr in arb_addr(),
        tag in any::<u32>(),
        kind_idx in 0usize..6,
        size_idx in 0usize..5,
        corrupt_byte in 0usize..14,
        corrupt_bit in 0u8..8,
    ) {
        let kind = [
            PacketKind::ReadRequest,
            PacketKind::ReadResponse,
            PacketKind::WriteRequest,
            PacketKind::WriteResponse,
            PacketKind::AtomicRequest,
            PacketKind::AtomicResponse,
        ][kind_idx];
        let size = [ReqSize::B16, ReqSize::B32, ReqSize::B64, ReqSize::B128, ReqSize::B256]
            [size_idx];
        let p = HmcPacket { kind, addr: PhysAddr::new(addr & !0xF), size, tag };
        let enc = p.encode();
        prop_assert_eq!(HmcPacket::decode(enc.clone()), Some(p.clone()));

        let mut bad = bytes::BytesMut::from(&enc[..]);
        bad[corrupt_byte] ^= 1 << corrupt_bit;
        let decoded = HmcPacket::decode(bad.freeze());
        prop_assert_ne!(decoded, Some(p), "corruption must not decode to the original");
    }

    /// Eq. 1 is monotone in the request size and bounded by (0, 1).
    #[test]
    fn efficiency_monotone_and_bounded(a in 1u64..4096, b in 1u64..4096) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bandwidth_efficiency(lo) <= bandwidth_efficiency(hi));
        prop_assert!(bandwidth_efficiency(lo) > 0.0);
        prop_assert!(bandwidth_efficiency(hi) < 1.0);
        let _ = CONTROL_BYTES_PER_ACCESS;
    }
}
