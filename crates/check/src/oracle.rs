//! The timing-free functional oracle.
//!
//! [`OracleReplay`] re-executes the same thread programs the simulator
//! ran, with no pipelining, no coalescing, and no timing model — just
//! program order, address decode, and per-request service accounting.
//! It is *obviously* correct (a straight walk over the operation lists),
//! which makes it a trustworthy second witness: after a checked run,
//! [`OracleReplay::diff`] compares its expectations against what the
//! [`ConformanceChecker`] observed the real pipeline do, and any
//! difference is a functional bug in the simulator regardless of which
//! invariants happened to fire.

use std::collections::BTreeMap;

use mac_types::{MemOpKind, PhysAddr};
use soc_sim::ThreadOp;

use crate::invariants::{ConformanceChecker, KindCounts};

/// Expected functional outcome of a workload, computed by straight
/// replay of its thread programs.
#[derive(Debug, Clone, Default)]
pub struct OracleReplay {
    /// `(node, tid)` -> program-order `(address, kind)` memory stream.
    per_thread: BTreeMap<(u16, u16), Vec<(u64, MemOpKind)>>,
    /// Raw memory requests (loads/stores/atomics) each row must serve.
    served_per_row: BTreeMap<u64, u64>,
    counts: KindCounts,
}

impl OracleReplay {
    /// Replay `ops[node][tid]` operation lists. A thread's walk stops at
    /// its first explicit [`ThreadOp::Done`] (the simulator treats `Done`
    /// as terminal even mid-list); `Compute`/`Spm` ops never reach
    /// memory and are skipped.
    pub fn replay(ops_per_node: &[Vec<Vec<ThreadOp>>]) -> Self {
        let mut oracle = OracleReplay::default();
        for (node, threads) in ops_per_node.iter().enumerate() {
            for (tid, ops) in threads.iter().enumerate() {
                let key = (node as u16, tid as u16);
                let log = oracle.per_thread.entry(key).or_default();
                for op in ops {
                    match *op {
                        ThreadOp::Done => break,
                        ThreadOp::Compute(_) | ThreadOp::Spm => {}
                        ThreadOp::Mem { addr, kind } => {
                            // Decode exactly like the real pipeline must:
                            // masked physical address, row = addr / 256 B.
                            let addr = PhysAddr::new(addr.raw());
                            log.push((addr.raw(), kind));
                            match kind {
                                MemOpKind::Load => oracle.counts.loads += 1,
                                MemOpKind::Store => oracle.counts.stores += 1,
                                MemOpKind::Atomic => oracle.counts.atomics += 1,
                                MemOpKind::Fence => oracle.counts.fences += 1,
                            }
                            if kind != MemOpKind::Fence {
                                *oracle.served_per_row.entry(addr.row().0).or_default() += 1;
                            }
                        }
                    }
                }
            }
        }
        oracle
    }

    /// Per-kind totals the workload must generate.
    pub fn counts(&self) -> &KindCounts {
        &self.counts
    }

    /// Expected raw memory requests per row number.
    pub fn served_per_row(&self) -> &BTreeMap<u64, u64> {
        &self.served_per_row
    }

    /// Diff the oracle's expectations against what the checker observed.
    /// Returns one human-readable divergence per mismatch (empty means
    /// the run was functionally faithful). Call after the checker's
    /// `finish` — a partial run diffs as missing requests.
    pub fn diff(&self, checker: &ConformanceChecker) -> Vec<String> {
        let mut out = Vec::new();
        let observed = checker.counts();
        if *observed != self.counts {
            out.push(format!(
                "request counts diverge: oracle {:?}, simulator {:?}",
                self.counts, observed
            ));
        }
        if checker.completions_total() != self.counts.total() {
            out.push(format!(
                "completions diverge: oracle expects {}, simulator delivered {}",
                self.counts.total(),
                checker.completions_total()
            ));
        }

        // Program-order streams, both directions.
        let sim = checker.per_thread_log();
        for (thread, expected) in &self.per_thread {
            let got = sim.get(thread).map(Vec::as_slice).unwrap_or(&[]);
            if got != expected.as_slice() {
                let first_bad = expected
                    .iter()
                    .zip(got.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| expected.len().min(got.len()));
                out.push(format!(
                    "thread {:?} stream diverges at op {} (oracle {} ops, simulator {}): \
                     oracle {:?}, simulator {:?}",
                    thread,
                    first_bad,
                    expected.len(),
                    got.len(),
                    expected.get(first_bad),
                    got.get(first_bad)
                ));
            }
        }
        for thread in sim.keys() {
            if !self.per_thread.contains_key(thread) && !sim[thread].is_empty() {
                out.push(format!(
                    "simulator issued {} ops for thread {:?} the oracle never ran",
                    sim[thread].len(),
                    thread
                ));
            }
        }

        // Row-level service accounting.
        let sim_rows = checker.served_per_row();
        for (&row, &expected) in &self.served_per_row {
            let got = sim_rows.get(&row).copied().unwrap_or(0);
            if got != expected {
                out.push(format!(
                    "row {row:#x} served {got} raw requests, oracle expects {expected}"
                ));
            }
        }
        for (&row, &got) in sim_rows {
            if !self.served_per_row.contains_key(&row) {
                out.push(format!(
                    "row {row:#x} served {got} raw requests the oracle never decoded"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_types::{NodeId, RawRequest, SystemConfig, Target, TransactionId};

    fn mem(addr: u64, kind: MemOpKind) -> ThreadOp {
        ThreadOp::Mem {
            addr: PhysAddr::new(addr),
            kind,
        }
    }

    #[test]
    fn replay_decodes_rows_and_counts() {
        let ops = vec![vec![vec![
            ThreadOp::Compute(5),
            mem(0x100, MemOpKind::Load),
            mem(0x110, MemOpKind::Store),
            mem(0x400, MemOpKind::Load),
            mem(0, MemOpKind::Fence),
            ThreadOp::Done,
            mem(0x9999, MemOpKind::Load), // unreachable past Done
        ]]];
        let o = OracleReplay::replay(&ops);
        assert_eq!(o.counts().loads, 2);
        assert_eq!(o.counts().stores, 1);
        assert_eq!(o.counts().fences, 1);
        // 0x100 and 0x110 share row 1; 0x400 is row 4; the fence hits no row.
        assert_eq!(o.served_per_row().get(&1), Some(&2));
        assert_eq!(o.served_per_row().get(&4), Some(&1));
        assert_eq!(o.served_per_row().len(), 2);
    }

    #[test]
    fn diff_flags_missing_and_reordered_requests() {
        let ops = vec![vec![vec![
            mem(0x100, MemOpKind::Load),
            mem(0x400, MemOpKind::Load),
        ]]];
        let o = OracleReplay::replay(&ops);

        // A checker that saw only the first request, never completed.
        let mut c = ConformanceChecker::new(&SystemConfig::paper(1));
        let a = PhysAddr::new(0x100);
        c.on_raw_issued(
            &RawRequest {
                id: TransactionId(1),
                addr: a,
                kind: MemOpKind::Load,
                node: NodeId(0),
                home: NodeId(0),
                target: Target {
                    tid: 0,
                    tag: 0,
                    flit: a.flit(),
                },
                issued_at: 0,
            },
            0,
        );
        let d = o.diff(&c);
        assert!(d.iter().any(|m| m.contains("counts diverge")), "{d:?}");
        assert!(d.iter().any(|m| m.contains("stream diverges")), "{d:?}");
        assert!(d.iter().any(|m| m.contains("row 0x4")), "{d:?}");
    }

    #[test]
    fn diff_is_empty_for_faithful_observation() {
        let ops = vec![vec![vec![mem(0x100, MemOpKind::Load)]]];
        let o = OracleReplay::replay(&ops);
        let mut c = ConformanceChecker::new(&SystemConfig::paper(1));
        let a = PhysAddr::new(0x100);
        let raw = RawRequest {
            id: TransactionId(7),
            addr: a,
            kind: MemOpKind::Load,
            node: NodeId(0),
            home: NodeId(0),
            target: Target {
                tid: 0,
                tag: 0,
                flit: a.flit(),
            },
            issued_at: 0,
        };
        c.on_raw_issued(&raw, 0);
        let txn = mac_types::HmcRequest {
            addr: a.flit_base(),
            size: mac_types::ReqSize::B16,
            is_write: false,
            is_atomic: false,
            flit_map: mac_types::FlitMap::single(a.flit()),
            targets: vec![raw.target],
            raw_ids: vec![raw.id],
            dispatched_at: 1,
        };
        c.on_dispatch(&txn, 1);
        c.on_completion(raw.id, 5);
        assert!(o.diff(&c).is_empty());
    }
}
