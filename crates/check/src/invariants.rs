//! The run-alongside invariant checker.
//!
//! [`ConformanceChecker`] is observational: the system loops call its
//! hooks at the same points they already emit telemetry, and nothing in
//! the simulation reads it back. Every detected inconsistency becomes a
//! [`Violation`] citing one of the numbered invariants below, so a fuzz
//! failure (or a CI smoke failure) names exactly which conservation
//! property broke.
//!
//! # The invariant list
//!
//! | # | Property |
//! |---|----------|
//! | I1 | Every accepted raw request is acknowledged exactly once, and the run drains (no leftovers at end of run). |
//! | I2 | Every raw memory request is carried by exactly one dispatched transaction (disjoint `raw_ids` across dispatches, no dispatch of unknown or fence ids). |
//! | I3 | Every dispatched transaction gets exactly one device response echoing its address, size, targets and raw ids, completed no earlier than it was dispatched. |
//! | I4 | FLIT counts are conserved: a packet's useful bytes never exceed its payload, and its FLIT map never carries more FLITs than the payload holds. |
//! | I5 | Fence ordering: no request is issued while its thread has an unretired fence, no dispatch carries a raw issued behind a still-pending fence, and fences retire exactly once. |
//! | I6 | Packet shape matches the FLIT map: non-empty map inside the packet's address window, single-FLIT bypass/atomic packets are 16 B at their FLIT base, builder packets are chunk-aligned 64/128/256 B. |
//! | I7 | Aggregate statistics are monotonic: no counter ever decreases between cycle-batches. |
//! | I8 | Statistics are cross-consistent: per-component self-checks pass, and at end of run raw counts equal the coalesced-weighted emitted counts. |
//! | I9 | Each raw request is served from the row and FLIT its address decodes to. |
//! | I10 | Target records are conserved: `targets` parallels `raw_ids` and every target's FLIT is present in the packet's map. |

use std::collections::{BTreeMap, HashMap};

use mac_types::{
    Cycle, HmcRequest, HmcResponse, MacPlacement, MemOpKind, RawRequest, ReqSize, SystemConfig,
    TransactionId, FLITS_PER_CHUNK,
};

/// Number of checked invariants (they are numbered `1..=INVARIANTS`).
pub const INVARIANTS: u8 = 10;

/// Cap on stored violations; further ones only bump the suppressed count
/// (a broken run can otherwise flood memory with millions of identical
/// findings).
const MAX_STORED: usize = 64;

/// One-line description of invariant `n` (1-based; see the module docs).
pub fn invariant_description(n: u8) -> &'static str {
    match n {
        1 => "every accepted raw request is acknowledged exactly once and the run drains",
        2 => "every raw memory request is carried by exactly one dispatched transaction",
        3 => "every dispatch gets exactly one response echoing its addr/size/targets/raw ids",
        4 => "FLIT counts are conserved (useful bytes and map bits fit the payload)",
        5 => "no request is issued or dispatched past an unretired fence; fences retire once",
        6 => "packet shape is consistent with its FLIT map (window, alignment, size class)",
        7 => "aggregate statistics are monotonic across cycle-batches",
        8 => "statistics are cross-consistent (raw == coalesced-weighted emitted)",
        9 => "each raw request is served from the row/FLIT its address decodes to",
        10 => "target records parallel raw ids and lie inside the packet's FLIT map",
        _ => "unknown invariant",
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke (1-based index into the module-docs table).
    pub invariant: u8,
    /// Simulated cycle at which the violation was detected.
    pub cycle: Cycle,
    /// Human-readable specifics (ids, addresses, counts).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "I{} @ cycle {}: {} ({})",
            self.invariant,
            self.cycle,
            self.detail,
            invariant_description(self.invariant)
        )
    }
}

/// Per-kind raw request totals observed by the checker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Raw loads accepted.
    pub loads: u64,
    /// Raw stores accepted.
    pub stores: u64,
    /// Raw atomics accepted.
    pub atomics: u64,
    /// Raw fences accepted.
    pub fences: u64,
}

impl KindCounts {
    /// Memory requests (everything except fences).
    pub fn memory(&self) -> u64 {
        self.loads + self.stores + self.atomics
    }

    /// All requests including fences.
    pub fn total(&self) -> u64 {
        self.memory() + self.fences
    }
}

/// A snapshot of the aggregate statistics the checker cross-checks each
/// cycle-batch (I7/I8). The system loop builds it from the merged
/// MAC/device stats; all fields are cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsProbe {
    /// MAC: raw loads + stores + atomics accepted.
    pub mac_raw_memory: u64,
    /// MAC: raw fences accepted.
    pub mac_raw_fences: u64,
    /// MAC: fences retired.
    pub mac_fences_retired: u64,
    /// MAC: total transactions dispatched (sum over the size histogram).
    pub mac_emitted_total: u64,
    /// MAC: bypass + built + atomic dispatch counts (the provenance
    /// split, which must re-sum to `mac_emitted_total`).
    pub mac_emitted_split: u64,
    /// MAC: bypass + built dispatches (excluding the atomic direct path).
    pub mac_emitted_bypass_built: u64,
    /// MAC: ARQ group entries popped (events of the targets-per-entry
    /// distribution).
    pub mac_pop_groups: u64,
    /// MAC: total merged raw requests over popped groups (sum of the
    /// targets-per-entry distribution).
    pub mac_targets_sum: u128,
    /// Device: accesses served.
    pub device_accesses: u64,
    /// Device: raw requests satisfied (sum of per-access merged counts).
    pub device_raw_satisfied: u64,
    /// Device: payload bytes moved.
    pub device_data_bytes: u128,
    /// Device: payload bytes actually requested by raw requests.
    pub device_useful_bytes: u128,
}

/// End-of-run observation handed to [`ConformanceChecker::finish`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FinishProbe {
    /// Whether the simulator reached its idle state (vs the cycle cap).
    pub idle: bool,
    /// SoC metric: raw requests accepted from the cores.
    pub soc_raw_requests: u64,
    /// SoC metric: completions delivered back to threads.
    pub soc_completions: u64,
    /// Final aggregate statistics.
    pub stats: StatsProbe,
}

/// Lifecycle record for one accepted raw request.
#[derive(Debug, Clone, Copy)]
struct Issued {
    addr: mac_types::PhysAddr,
    kind: MemOpKind,
    thread: (u16, u16),
    /// Fence id pending on this thread when the request was issued (must
    /// be retired before this request may dispatch — I5).
    after_fence: Option<u64>,
    dispatched: bool,
    completed: bool,
}

/// Outstanding dispatched transaction awaiting its response.
#[derive(Debug, Clone)]
struct DispatchRec {
    addr: mac_types::PhysAddr,
    size: ReqSize,
    raw_ids: Vec<u64>,
    targets: usize,
    dispatched_at: Cycle,
}

/// The invariant checker. See the module docs for the invariant list.
///
/// Construct with [`ConformanceChecker::new`], feed the hooks from the
/// run loop, then call [`ConformanceChecker::finish`] once.
#[derive(Debug)]
pub struct ConformanceChecker {
    mac_enabled: bool,
    /// Fences pass through a MAC's ARQ (false in baseline mode and in
    /// per-cube placement, where the host packetizer retires them).
    fences_via_mac: bool,
    issued: HashMap<u64, Issued>,
    /// `(node, tid)` -> id of that thread's currently pending fence.
    fence_pending: HashMap<(u16, u16), u64>,
    /// Program-order issue log per `(node, tid)`, for the oracle diff.
    per_thread: BTreeMap<(u16, u16), Vec<(u64, MemOpKind)>>,
    /// Raw memory requests served per row (key: row number), accumulated
    /// at dispatch — diffed against the oracle's own address decode.
    served_per_row: BTreeMap<u64, u64>,
    counts: KindCounts,
    dispatches: u64,
    responses: u64,
    completions: u64,
    fence_retires: u64,
    groups: HashMap<u64, DispatchRec>,
    /// raw id -> dispatch group, for matching responses back (I3).
    raw_group: HashMap<u64, u64>,
    next_group: u64,
    prev_probe: Option<StatsProbe>,
    violations: Vec<Violation>,
    suppressed: u64,
    finished: bool,
}

impl ConformanceChecker {
    /// Build a checker for a run under `cfg` (the mode flags decide which
    /// end-of-run stat equalities apply).
    pub fn new(cfg: &SystemConfig) -> Self {
        let per_cube = cfg.net.enabled && cfg.net.placement == MacPlacement::PerCube;
        ConformanceChecker {
            mac_enabled: !cfg.mac_disabled,
            fences_via_mac: !cfg.mac_disabled && !per_cube,
            issued: HashMap::new(),
            fence_pending: HashMap::new(),
            per_thread: BTreeMap::new(),
            served_per_row: BTreeMap::new(),
            counts: KindCounts::default(),
            dispatches: 0,
            responses: 0,
            completions: 0,
            fence_retires: 0,
            groups: HashMap::new(),
            raw_group: HashMap::new(),
            next_group: 0,
            prev_probe: None,
            violations: Vec::new(),
            suppressed: 0,
            finished: false,
        }
    }

    fn violate(&mut self, invariant: u8, cycle: Cycle, detail: String) {
        if self.violations.len() < MAX_STORED {
            self.violations.push(Violation {
                invariant,
                cycle,
                detail,
            });
        } else {
            self.suppressed += 1;
        }
    }

    /// A raw request was *accepted* by the router (rejected issues retry
    /// with the same id and must not be recorded).
    pub fn on_raw_issued(&mut self, raw: &RawRequest, now: Cycle) {
        let id = raw.id.0;
        let thread = (raw.node.0, raw.target.tid);
        if raw.kind != MemOpKind::Fence && raw.target.flit != raw.addr.flit() {
            self.violate(
                9,
                now,
                format!(
                    "raw {id:#x} target flit {} != address flit {}",
                    raw.target.flit,
                    raw.addr.flit()
                ),
            );
        }
        if let Some(&pending) = self.fence_pending.get(&thread) {
            // The core model blocks a thread on its pending fence, so any
            // issue past one is an ordering bug in the issue path itself.
            self.violate(
                5,
                now,
                format!(
                    "raw {id:#x} issued by thread {thread:?} behind unretired fence {pending:#x}"
                ),
            );
        }
        let after_fence = self.fence_pending.get(&thread).copied();
        let rec = Issued {
            addr: raw.addr,
            kind: raw.kind,
            thread,
            after_fence,
            dispatched: false,
            completed: false,
        };
        if self.issued.insert(id, rec).is_some() {
            self.violate(1, now, format!("raw id {id:#x} issued twice"));
        }
        match raw.kind {
            MemOpKind::Load => self.counts.loads += 1,
            MemOpKind::Store => self.counts.stores += 1,
            MemOpKind::Atomic => self.counts.atomics += 1,
            MemOpKind::Fence => {
                self.counts.fences += 1;
                self.fence_pending.insert(thread, id);
            }
        }
        self.per_thread
            .entry(thread)
            .or_default()
            .push((raw.addr.raw(), raw.kind));
    }

    /// A fence retired (MAC event or host packetizer).
    pub fn on_fence_retired(&mut self, raw: &RawRequest, now: Cycle) {
        let id = raw.id.0;
        let thread = (raw.node.0, raw.target.tid);
        match self.issued.get_mut(&id) {
            None => self.violate(5, now, format!("unknown fence {id:#x} retired")),
            Some(rec) => {
                let kind = rec.kind;
                let double = rec.completed;
                rec.completed = true;
                if kind != MemOpKind::Fence {
                    self.violate(
                        5,
                        now,
                        format!("{kind:?} {id:#x} retired via the fence path"),
                    );
                }
                if double {
                    self.violate(5, now, format!("fence {id:#x} retired twice"));
                }
            }
        }
        match self.fence_pending.get(&thread) {
            Some(&pending) if pending == id => {
                self.fence_pending.remove(&thread);
            }
            other => self.violate(
                5,
                now,
                format!(
                    "fence {id:#x} retired but thread {thread:?} pends {:?}",
                    other.copied()
                ),
            ),
        }
        self.fence_retires += 1;
    }

    /// A transaction was dispatched toward the device.
    pub fn on_dispatch(&mut self, req: &HmcRequest, now: Cycle) {
        self.dispatches += 1;
        let addr = req.addr;
        let flits = req.size.flits();
        if req.flit_map.is_empty() {
            self.violate(
                6,
                now,
                format!("dispatch @ {:#x} has empty FLIT map", addr.raw()),
            );
        }
        if req.targets.len() != req.raw_ids.len() {
            self.violate(
                10,
                now,
                format!(
                    "dispatch @ {:#x}: {} targets vs {} raw ids",
                    addr.raw(),
                    req.targets.len(),
                    req.raw_ids.len()
                ),
            );
        }
        if req.raw_ids.is_empty() {
            self.violate(
                6,
                now,
                format!("dispatch @ {:#x} carries no raw ids", addr.raw()),
            );
        }
        if u64::from(req.flit_map.count()) > flits {
            self.violate(
                4,
                now,
                format!(
                    "dispatch @ {:#x}: {} FLITs mapped into a {} B payload",
                    addr.raw(),
                    req.flit_map.count(),
                    req.size.bytes()
                ),
            );
        }
        if req.useful_bytes() > req.size.bytes() {
            self.violate(
                4,
                now,
                format!(
                    "dispatch @ {:#x}: {} useful bytes > {} payload bytes",
                    addr.raw(),
                    req.useful_bytes(),
                    req.size.bytes()
                ),
            );
        }
        // Packet shape vs map (I6). The window is [addr.flit, addr.flit+flits).
        let lo = u64::from(addr.flit());
        if req.size == ReqSize::B16 {
            if req.flit_map.count() != 1 || req.flit_map.first() != Some(addr.flit()) {
                self.violate(
                    6,
                    now,
                    format!(
                        "16 B dispatch @ {:#x} must map exactly its own FLIT (map {})",
                        addr.raw(),
                        req.flit_map
                    ),
                );
            }
        } else {
            if lo % FLITS_PER_CHUNK != 0 || req.size == ReqSize::B32 {
                self.violate(
                    6,
                    now,
                    format!(
                        "built dispatch @ {:#x} ({} B) is not a chunk-aligned 64/128/256 B packet",
                        addr.raw(),
                        req.size.bytes()
                    ),
                );
            }
            for f in req.flit_map.iter() {
                let f = u64::from(f);
                if f < lo || f >= lo + flits {
                    self.violate(
                        6,
                        now,
                        format!(
                            "dispatch @ {:#x} ({} B): mapped FLIT {f} outside window [{lo}, {})",
                            addr.raw(),
                            req.size.bytes(),
                            lo + flits
                        ),
                    );
                }
            }
        }
        for t in &req.targets {
            if !req.flit_map.get(t.flit) {
                self.violate(
                    10,
                    now,
                    format!(
                        "dispatch @ {:#x}: target tid {} flit {} not in map {}",
                        addr.raw(),
                        t.tid,
                        t.flit,
                        req.flit_map
                    ),
                );
            }
        }
        let group = self.next_group;
        self.next_group += 1;
        for raw_id in &req.raw_ids {
            let id = raw_id.0;
            match self.issued.get(&id).copied() {
                None => self.violate(2, now, format!("dispatch carries unknown raw {id:#x}")),
                Some(rec) => {
                    if rec.kind == MemOpKind::Fence {
                        self.violate(2, now, format!("fence {id:#x} inside a dispatch"));
                    }
                    if rec.dispatched {
                        self.violate(2, now, format!("raw {id:#x} dispatched twice"));
                    }
                    let flag_ok = match rec.kind {
                        MemOpKind::Load => !req.is_write && !req.is_atomic,
                        MemOpKind::Store => req.is_write && !req.is_atomic,
                        MemOpKind::Atomic => req.is_atomic && !req.is_write,
                        MemOpKind::Fence => false,
                    };
                    if !flag_ok {
                        self.violate(
                            6,
                            now,
                            format!(
                                "raw {id:#x} ({:?}) inside a write={} atomic={} dispatch",
                                rec.kind, req.is_write, req.is_atomic
                            ),
                        );
                    }
                    if rec.addr.row() != addr.row() {
                        self.violate(
                            9,
                            now,
                            format!(
                                "raw {id:#x} @ row {:#x} served by dispatch @ row {:#x}",
                                rec.addr.row().0,
                                addr.row().0
                            ),
                        );
                    }
                    if !req.flit_map.get(rec.addr.flit()) {
                        self.violate(
                            9,
                            now,
                            format!(
                                "raw {id:#x} FLIT {} missing from dispatch map {}",
                                rec.addr.flit(),
                                req.flit_map
                            ),
                        );
                    }
                    if let Some(fence) = rec.after_fence {
                        let fence_open = self.issued.get(&fence).is_some_and(|f| !f.completed);
                        if fence_open {
                            self.violate(
                                5,
                                now,
                                format!(
                                    "raw {id:#x} dispatched before its fence {fence:#x} retired"
                                ),
                            );
                        }
                    }
                    if rec.kind != MemOpKind::Fence {
                        *self.served_per_row.entry(rec.addr.row().0).or_default() += 1;
                    }
                    if let Some(rec) = self.issued.get_mut(&id) {
                        rec.dispatched = true;
                    }
                }
            }
            if self.raw_group.insert(id, group).is_some() {
                self.violate(2, now, format!("raw {id:#x} already in an open dispatch"));
            }
        }
        self.groups.insert(
            group,
            DispatchRec {
                addr,
                size: req.size,
                raw_ids: req.raw_ids.iter().map(|i| i.0).collect(),
                targets: req.targets.len(),
                dispatched_at: now,
            },
        );
    }

    /// The device completed a transaction.
    pub fn on_response(&mut self, rsp: &HmcResponse, now: Cycle) {
        self.responses += 1;
        let Some(first) = rsp.raw_ids.first() else {
            self.violate(
                3,
                now,
                format!("response @ {:#x} carries no raw ids", rsp.addr.raw()),
            );
            return;
        };
        let Some(&group) = self.raw_group.get(&first.0) else {
            self.violate(
                3,
                now,
                format!("response for raw {:#x} without an open dispatch", first.0),
            );
            return;
        };
        for id in &rsp.raw_ids {
            if self.raw_group.remove(&id.0) != Some(group) {
                self.violate(
                    3,
                    now,
                    format!("response mixes raw {:#x} from another dispatch", id.0),
                );
            }
        }
        let Some(rec) = self.groups.remove(&group) else {
            self.violate(3, now, format!("dispatch group {group} responded twice"));
            return;
        };
        let mut rsp_ids: Vec<u64> = rsp.raw_ids.iter().map(|i| i.0).collect();
        let mut req_ids = rec.raw_ids.clone();
        rsp_ids.sort_unstable();
        req_ids.sort_unstable();
        if rsp.addr != rec.addr || rsp.size != rec.size {
            self.violate(
                3,
                now,
                format!(
                    "response @ {:#x}/{} B does not echo dispatch @ {:#x}/{} B",
                    rsp.addr.raw(),
                    rsp.size.bytes(),
                    rec.addr.raw(),
                    rec.size.bytes()
                ),
            );
        }
        if rsp_ids != req_ids || rsp.targets.len() != rec.targets {
            self.violate(
                3,
                now,
                format!(
                    "response @ {:#x} raw-id/target set differs from its dispatch",
                    rsp.addr.raw()
                ),
            );
        }
        if rsp.completed_at < rec.dispatched_at {
            self.violate(
                3,
                now,
                format!(
                    "response completed at {} before dispatch at {}",
                    rsp.completed_at, rec.dispatched_at
                ),
            );
        }
    }

    /// A per-request completion was delivered toward its thread.
    pub fn on_completion(&mut self, id: TransactionId, now: Cycle) {
        let id = id.0;
        match self.issued.get_mut(&id) {
            None => self.violate(1, now, format!("completion for unknown raw {id:#x}")),
            Some(rec) => {
                let double = rec.completed;
                let dispatched = rec.dispatched;
                rec.completed = true;
                if double {
                    self.violate(1, now, format!("raw {id:#x} completed twice"));
                }
                if !dispatched {
                    self.violate(2, now, format!("raw {id:#x} completed without a dispatch"));
                }
            }
        }
        self.completions += 1;
    }

    /// Cross-check a cycle-batch statistics snapshot (I7 monotonicity and
    /// the instantaneously valid I8 inequalities).
    pub fn on_cycle_batch(&mut self, now: Cycle, probe: &StatsProbe) {
        if let Some(prev) = self.prev_probe {
            let decreased = [
                ("mac_raw_memory", prev.mac_raw_memory, probe.mac_raw_memory),
                ("mac_raw_fences", prev.mac_raw_fences, probe.mac_raw_fences),
                (
                    "mac_fences_retired",
                    prev.mac_fences_retired,
                    probe.mac_fences_retired,
                ),
                (
                    "mac_emitted_total",
                    prev.mac_emitted_total,
                    probe.mac_emitted_total,
                ),
                ("mac_pop_groups", prev.mac_pop_groups, probe.mac_pop_groups),
                (
                    "device_accesses",
                    prev.device_accesses,
                    probe.device_accesses,
                ),
                (
                    "device_raw_satisfied",
                    prev.device_raw_satisfied,
                    probe.device_raw_satisfied,
                ),
            ];
            for (name, before, after) in decreased {
                if after < before {
                    self.violate(7, now, format!("{name} decreased: {before} -> {after}"));
                }
            }
            if probe.device_data_bytes < prev.device_data_bytes
                || probe.device_useful_bytes < prev.device_useful_bytes
                || probe.mac_targets_sum < prev.mac_targets_sum
            {
                self.violate(7, now, "byte/target totals decreased".to_string());
            }
        }
        self.prev_probe = Some(*probe);
        if probe.mac_emitted_total != probe.mac_emitted_split {
            self.violate(
                8,
                now,
                format!(
                    "emitted size histogram ({}) != provenance split ({})",
                    probe.mac_emitted_total, probe.mac_emitted_split
                ),
            );
        }
        let checks = [
            (
                "device raw_satisfied exceeds issued memory requests",
                probe.device_raw_satisfied,
                self.counts.memory(),
            ),
            (
                "device served more accesses than were dispatched",
                probe.device_accesses,
                self.dispatches,
            ),
            (
                "MAC accepted more memory requests than were issued",
                probe.mac_raw_memory,
                self.counts.memory(),
            ),
            (
                "MAC retired more fences than were issued",
                probe.mac_fences_retired,
                self.counts.fences,
            ),
        ];
        for (what, lhs, rhs) in checks {
            if lhs > rhs {
                self.violate(8, now, format!("{what}: {lhs} > {rhs}"));
            }
        }
        if probe.device_useful_bytes > probe.device_data_bytes {
            self.violate(
                8,
                now,
                format!(
                    "useful bytes {} > data bytes {}",
                    probe.device_useful_bytes, probe.device_data_bytes
                ),
            );
        }
    }

    /// Fold a component's own consistency self-check failure (I8).
    pub fn on_component_error(&mut self, now: Cycle, msg: &str) {
        self.violate(8, now, msg.to_string());
    }

    /// End-of-run accounting. Call exactly once, after the run loop.
    pub fn finish(&mut self, probe: &FinishProbe, now: Cycle) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.on_cycle_batch(now, &probe.stats);
        if !probe.idle {
            self.violate(
                1,
                now,
                format!(
                    "run hit the cycle cap before draining ({} raw requests still open)",
                    self.issued.values().filter(|r| !r.completed).count()
                ),
            );
            return; // The strict equalities below only hold for drained runs.
        }
        let mut leftovers: Vec<(u64, Issued)> = self
            .issued
            .iter()
            .filter(|(_, r)| !r.completed)
            .map(|(&id, &r)| (id, r))
            .collect();
        leftovers.sort_unstable_by_key(|(id, _)| *id);
        for (id, rec) in leftovers.into_iter().take(8) {
            self.violate(
                1,
                now,
                format!(
                    "raw {id:#x} ({:?} by thread {:?}) never completed (dispatched: {})",
                    rec.kind, rec.thread, rec.dispatched
                ),
            );
        }
        if !self.groups.is_empty() {
            self.violate(
                3,
                now,
                format!("{} dispatches never got a response", self.groups.len()),
            );
        }
        if !self.fence_pending.is_empty() {
            self.violate(
                5,
                now,
                format!("{} fences still pending at idle", self.fence_pending.len()),
            );
        }
        let s = probe.stats;
        let mut equalities: Vec<(u8, &str, u64, u64)> = vec![
            (
                8,
                "SoC raw_requests vs checker issues",
                probe.soc_raw_requests,
                self.counts.total(),
            ),
            (
                8,
                "SoC completions vs checker completions+fences",
                probe.soc_completions,
                self.completions + self.fence_retires,
            ),
            (
                8,
                "device accesses vs dispatches",
                s.device_accesses,
                self.dispatches,
            ),
            (
                2,
                "device raw_satisfied vs issued memory requests",
                s.device_raw_satisfied,
                self.counts.memory(),
            ),
        ];
        if self.mac_enabled {
            equalities.push((
                8,
                "MAC raw memory requests vs issued",
                s.mac_raw_memory,
                self.counts.memory(),
            ));
            equalities.push((
                8,
                "MAC emitted vs dispatches",
                s.mac_emitted_total,
                self.dispatches,
            ));
        }
        if self.fences_via_mac {
            equalities.push((
                8,
                "MAC raw fences vs issued fences",
                s.mac_raw_fences,
                self.counts.fences,
            ));
            equalities.push((
                8,
                "MAC fences retired vs issued fences",
                s.mac_fences_retired,
                self.counts.fences,
            ));
        }
        for (inv, what, lhs, rhs) in equalities {
            if lhs != rhs {
                self.violate(inv, now, format!("{what}: {lhs} != {rhs}"));
            }
        }
        if self.mac_enabled {
            // The coalesced-weighted identity: every load/store passes
            // through exactly one popped ARQ group.
            if s.mac_targets_sum != u128::from(self.counts.loads + self.counts.stores) {
                self.violate(
                    8,
                    now,
                    format!(
                        "targets-per-entry sum {} != raw loads+stores {}",
                        s.mac_targets_sum,
                        self.counts.loads + self.counts.stores
                    ),
                );
            }
            if s.mac_emitted_bypass_built < s.mac_pop_groups {
                self.violate(
                    8,
                    now,
                    format!(
                        "{} popped groups produced only {} bypass/built dispatches",
                        s.mac_pop_groups, s.mac_emitted_bypass_built
                    ),
                );
            }
        }
    }

    /// Violations recorded so far (capped; see [`Self::suppressed`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consume the checker, returning its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    /// Violations beyond the storage cap.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// True when no violation was detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Per-kind totals of accepted raw requests.
    pub fn counts(&self) -> &KindCounts {
        &self.counts
    }

    /// Transactions dispatched.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Per-request completions plus fence retirements.
    pub fn completions_total(&self) -> u64 {
        self.completions + self.fence_retires
    }

    /// Program-order issue log per `(node, tid)` — `(address, kind)`.
    pub fn per_thread_log(&self) -> &BTreeMap<(u16, u16), Vec<(u64, MemOpKind)>> {
        &self.per_thread
    }

    /// Raw memory requests served per row number, accumulated at dispatch.
    pub fn served_per_row(&self) -> &BTreeMap<u64, u64> {
        &self.served_per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_types::{FlitMap, NodeId, PhysAddr, Target};

    fn raw(id: u64, addr: u64, kind: MemOpKind) -> RawRequest {
        let a = PhysAddr::new(addr);
        RawRequest {
            id: TransactionId(id),
            addr: a,
            kind,
            node: NodeId(0),
            home: NodeId(0),
            target: Target {
                tid: 0,
                tag: id as u16,
                flit: a.flit(),
            },
            issued_at: 0,
        }
    }

    fn txn_for(r: &RawRequest) -> HmcRequest {
        HmcRequest {
            addr: r.addr.flit_base(),
            size: ReqSize::B16,
            is_write: r.kind == MemOpKind::Store,
            is_atomic: r.kind == MemOpKind::Atomic,
            flit_map: FlitMap::single(r.addr.flit()),
            targets: vec![r.target],
            raw_ids: vec![r.id],
            dispatched_at: 1,
        }
    }

    fn rsp_for(t: &HmcRequest) -> HmcResponse {
        HmcResponse {
            addr: t.addr,
            size: t.size,
            is_write: t.is_write,
            targets: t.targets.clone(),
            raw_ids: t.raw_ids.clone(),
            completed_at: 10,
            conflicts: 0,
        }
    }

    fn checker() -> ConformanceChecker {
        ConformanceChecker::new(&SystemConfig::paper(1))
    }

    #[test]
    fn clean_single_request_lifecycle() {
        let mut c = checker();
        let r = raw(1, 0x1000, MemOpKind::Load);
        c.on_raw_issued(&r, 0);
        let t = txn_for(&r);
        c.on_dispatch(&t, 1);
        c.on_response(&rsp_for(&t), 10);
        c.on_completion(r.id, 11);
        let probe = FinishProbe {
            idle: true,
            soc_raw_requests: 1,
            soc_completions: 1,
            stats: StatsProbe {
                mac_raw_memory: 1,
                mac_emitted_total: 1,
                mac_emitted_split: 1,
                mac_emitted_bypass_built: 1,
                mac_pop_groups: 1,
                mac_targets_sum: 1,
                device_accesses: 1,
                device_raw_satisfied: 1,
                device_data_bytes: 16,
                device_useful_bytes: 16,
                ..StatsProbe::default()
            },
        };
        c.finish(&probe, 12);
        assert!(c.is_clean(), "{:?}", c.violations());
    }

    #[test]
    fn double_completion_is_i1() {
        let mut c = checker();
        let r = raw(1, 0x1000, MemOpKind::Load);
        c.on_raw_issued(&r, 0);
        let t = txn_for(&r);
        c.on_dispatch(&t, 1);
        c.on_completion(r.id, 5);
        c.on_completion(r.id, 6);
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, 1);
    }

    #[test]
    fn double_dispatch_is_i2() {
        let mut c = checker();
        let r = raw(1, 0x1000, MemOpKind::Load);
        c.on_raw_issued(&r, 0);
        let t = txn_for(&r);
        c.on_dispatch(&t, 1);
        c.on_dispatch(&t, 2);
        assert!(c.violations().iter().any(|v| v.invariant == 2));
    }

    #[test]
    fn mapped_flit_outside_window_is_i6() {
        // The deliberate chunk-mask off-by-one: a group with FLITs {0, 8}
        // whose builder packet only covers chunk 0.
        let mut c = checker();
        let a = raw(1, 0x2000, MemOpKind::Load); // flit 0
        let b = raw(2, 0x2080, MemOpKind::Load); // flit 8
        c.on_raw_issued(&a, 0);
        c.on_raw_issued(&b, 0);
        let mut fm = FlitMap::new();
        fm.set(0);
        fm.set(8);
        let t = HmcRequest {
            addr: PhysAddr::new(0x2000),
            size: ReqSize::B64, // window covers FLITs 0..4 only
            is_write: false,
            is_atomic: false,
            flit_map: fm,
            targets: vec![a.target, b.target],
            raw_ids: vec![a.id, b.id],
            dispatched_at: 1,
        };
        c.on_dispatch(&t, 1);
        assert!(
            c.violations().iter().any(|v| v.invariant == 6),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn dispatch_behind_pending_fence_is_i5() {
        let mut c = checker();
        let f = raw(1, 0, MemOpKind::Fence);
        c.on_raw_issued(&f, 0);
        let r = raw(2, 0x3000, MemOpKind::Load);
        c.on_raw_issued(&r, 1); // issue behind the fence: already I5
        c.on_dispatch(&txn_for(&r), 2); // dispatched before fence retired
        let i5 = c.violations().iter().filter(|v| v.invariant == 5).count();
        assert!(i5 >= 2, "{:?}", c.violations());
        c.on_fence_retired(&f, 3);
        assert_eq!(
            c.violations().iter().filter(|v| v.invariant == 5).count(),
            i5,
            "retire after the fact adds nothing"
        );
    }

    #[test]
    fn wrong_row_is_i9() {
        let mut c = checker();
        let r = raw(1, 0x1000, MemOpKind::Load);
        c.on_raw_issued(&r, 0);
        let mut t = txn_for(&r);
        t.addr = PhysAddr::new(0x5000);
        c.on_dispatch(&t, 1);
        assert!(c.violations().iter().any(|v| v.invariant == 9));
    }

    #[test]
    fn shrinking_counter_is_i7() {
        let mut c = checker();
        let mut p = StatsProbe {
            device_accesses: 5,
            ..StatsProbe::default()
        };
        c.on_cycle_batch(100, &p);
        p.device_accesses = 3;
        c.on_cycle_batch(200, &p);
        assert!(c.violations().iter().any(|v| v.invariant == 7));
    }

    #[test]
    fn non_idle_finish_is_i1_only() {
        let mut c = checker();
        let r = raw(1, 0x1000, MemOpKind::Load);
        c.on_raw_issued(&r, 0);
        c.finish(&FinishProbe::default(), 100);
        assert!(c
            .violations()
            .iter()
            .all(|v| v.invariant == 1 || v.invariant == 8));
        assert!(c.violations().iter().any(|v| v.invariant == 1));
    }

    #[test]
    fn descriptions_cover_all_invariants() {
        for n in 1..=INVARIANTS {
            assert_ne!(invariant_description(n), "unknown invariant");
        }
        assert_eq!(invariant_description(0), "unknown invariant");
    }
}
