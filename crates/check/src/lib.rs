//! # mac-check
//!
//! Differential conformance harness for the MAC reproduction.
//!
//! The simulator's figures are only as trustworthy as its *functional*
//! behaviour: every raw request must be served exactly once, in fence
//! order, from the DRAM row its address decodes to, and the statistics
//! the figures plot must be conserved across the
//! router → ARQ → builder → device → response pipeline. This crate
//! provides the two independent witnesses the `mac-bench fuzz`
//! differential fuzzer diffs against each other:
//!
//! * [`ConformanceChecker`] ([`invariants`]) — an observational monitor
//!   the system loops feed with every accepted issue, dispatch,
//!   response, completion, and fence retirement. It asserts the numbered
//!   invariants **I1–I10** (see [`invariant_description`]) online and at
//!   end of run, recording [`Violation`]s instead of panicking so
//!   failing cases can be shrunk and written out as reproducers.
//! * [`OracleReplay`] ([`oracle`]) — a timing-free re-execution of the
//!   same thread programs with no pipelining and no coalescing: just
//!   address decode, program order, and per-request service accounting.
//!   [`OracleReplay::diff`] compares its expectations against what the
//!   checker observed the real simulator do.
//!
//! The crate deliberately depends only on `mac-types` and `soc-sim` (for
//! [`soc_sim::ThreadOp`]), so `mac-sim` can host the hooks without a
//! dependency cycle.

#![warn(missing_docs)]

pub mod invariants;
pub mod oracle;

pub use invariants::{
    invariant_description, ConformanceChecker, FinishProbe, KindCounts, StatsProbe, Violation,
    INVARIANTS,
};
pub use oracle::OracleReplay;
