//! Property and fuzz-style tests for the MACS-1 streaming extensions:
//! encode→decode round-trips over arbitrary `watch` requests and stream
//! frames, and the frame decoder on malformed, mutated, and truncated
//! input must return `Err` — never panic, never mis-parse.

use proptest::prelude::*;

use mac_serve::{Frame, JobState, Request};
use mac_types::JobId;

/// A phase-token-flavoured string set: the real tokens plus arbitrary
/// text, since the wire field is a free string.
fn phase_from(raw: &[u8]) -> String {
    const ALPHABET: &[u8] = b"queridonglabc_";
    raw.iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

/// Arbitrary text made of the characters that actually appear in the
/// flat-JSON grammar, so fuzz inputs reach the parser's interesting
/// paths (braces, quotes, escapes, digits, the proto tag) instead of
/// bailing on the first byte.
fn frame_soup(raw: &[u8]) -> String {
    const ALPHABET: &[u8] = b"{}\":,\\0123456789abcdefgz macs-1typerogsl";
    raw.iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

fn job_id(hi: u64, lo: u64) -> JobId {
    JobId::from(((hi as u128) << 64) | lo as u128)
}

fn terminal_state(failed: bool, reason_raw: &[u8]) -> JobState {
    if failed {
        JobState::Failed {
            reason: phase_from(reason_raw),
        }
    } else {
        JobState::Done
    }
}

proptest! {
    /// Encode→decode identity for every well-formed progress frame.
    #[test]
    fn progress_frames_round_trip(
        job_hi in any::<u64>(),
        job_lo in any::<u64>(),
        cycles in any::<u64>(),
        retired in any::<u64>(),
        phase_raw in prop::collection::vec(any::<u8>(), 0..12),
    ) {
        let f = Frame::Progress {
            job: job_id(job_hi, job_lo),
            cycles,
            retired,
            phase: phase_from(&phase_raw),
        };
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    /// Encode→decode identity for sample and end frames, including
    /// failure reasons with characters that need JSON escaping.
    #[test]
    fn sample_and_end_frames_round_trip(
        job_hi in any::<u64>(),
        job_lo in any::<u64>(),
        lines in any::<u64>(),
        failed in any::<bool>(),
        reason_raw in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let sample = Frame::Sample { job: job_id(job_hi, job_lo), lines };
        prop_assert_eq!(Frame::decode(&sample.encode()).unwrap(), sample);
        let end = Frame::End {
            job: job_id(job_hi, job_lo),
            state: terminal_state(failed, &reason_raw),
        };
        prop_assert_eq!(Frame::decode(&end.encode()).unwrap(), end);
    }

    /// The watch request round-trips like every other verb.
    #[test]
    fn watch_requests_round_trip(job_hi in any::<u64>(), job_lo in any::<u64>()) {
        let r = Request::Watch { job: job_id(job_hi, job_lo) };
        prop_assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    /// Arbitrary grammar-flavoured soup: `Frame::decode` returns `Ok`
    /// or `Err`, but never panics — and anything it accepts re-encodes
    /// to a line it accepts again (decode∘encode is idempotent).
    #[test]
    fn frame_decode_never_panics_on_soup(raw in prop::collection::vec(any::<u8>(), 0..300)) {
        let line = frame_soup(&raw);
        if let Ok(frame) = Frame::decode(&line) {
            let again = Frame::decode(&frame.encode()).expect("re-encoded frame must decode");
            prop_assert_eq!(again, frame);
        }
    }

    /// Truncating a valid frame line anywhere must not panic, and a
    /// strict prefix of a frame line never decodes (the object is
    /// unterminated until the final `}`).
    #[test]
    fn frame_decode_survives_truncation(
        job_hi in any::<u64>(),
        job_lo in any::<u64>(),
        cycles in any::<u64>(),
        cut_ppm in 0u64..1_000_000,
    ) {
        let line = Frame::Progress {
            job: job_id(job_hi, job_lo),
            cycles,
            retired: cycles / 2,
            phase: "running".into(),
        }
        .encode();
        let cut = (line.len() as u64 * cut_ppm / 1_000_000) as usize;
        let truncated = &line[..cut.min(line.len())];
        if truncated.len() < line.len() {
            prop_assert!(Frame::decode(truncated).is_err());
        }
    }

    /// Flipping one byte of a valid frame line must not panic; if the
    /// mutant still decodes, it must re-encode consistently.
    #[test]
    fn frame_decode_survives_single_byte_mutation(
        job_hi in any::<u64>(),
        job_lo in any::<u64>(),
        lines in any::<u64>(),
        pos_ppm in 0u64..1_000_000,
        replacement in 0x20u8..0x7f,
    ) {
        let line = Frame::Sample { job: job_id(job_hi, job_lo), lines }.encode();
        let pos = (line.len() as u64 * pos_ppm / 1_000_000) as usize;
        if pos >= line.len() {
            return Ok(());
        }
        let mut mutated = line.into_bytes();
        mutated[pos] = replacement;
        let mutated = String::from_utf8(mutated).expect("ascii stays ascii");
        if let Ok(frame) = Frame::decode(&mutated) {
            let again = Frame::decode(&frame.encode()).expect("re-encoded frame must decode");
            prop_assert_eq!(again, frame);
        }
        Ok::<(), String>(())
    }
}
