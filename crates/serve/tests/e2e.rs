//! End-to-end acceptance tests for the job server, exercising the full
//! stack over real TCP: concurrent clients, in-flight dedup, warm
//! replay from the shared store, queue-overflow backpressure, and
//! drain-then-exit shutdown.

use std::path::PathBuf;

use mac_serve::{serve, AdmissionConfig, JobSpec, JobState, Response, ServeClient, ServerConfig};
use mac_sim::experiment::ExperimentConfig;

/// A unique scratch directory per test (removed on entry so reruns start
/// cold).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mac-serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(2);
    cfg.workload.scale = 1;
    cfg.workload.seed = seed;
    cfg.max_cycles = 50_000_000;
    cfg
}

fn server_config(out: PathBuf) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        sim_jobs: 2,
        out_dir: out,
        ..ServerConfig::default()
    }
}

/// Pull one counter/gauge value out of a mac-metrics v1 CSV.
fn metric(csv: &str, name: &str) -> u64 {
    let needle = format!(",{name},");
    csv.lines()
        .rev()
        .find(|l| l.contains(&needle))
        .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
        .unwrap_or_else(|| panic!("series {name} missing from:\n{csv}"))
}

/// Acceptance: ≥4 concurrent clients with a mix of duplicate and
/// distinct configs all get correct results, duplicates are deduped
/// (simulations executed < jobs submitted), and a warm resubmission of
/// the full set executes zero simulations.
#[test]
fn concurrent_clients_dedup_and_replay_warm() {
    let out = scratch("dedup");
    let handle = serve(server_config(out.clone())).expect("server starts");
    let addr = handle.addr().to_string();

    // 4 clients: everyone submits the same shared sim, plus one sim of
    // their own. 8 submissions, 5 distinct jobs.
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(&addr, &format!("client-{i}")).expect("connects");
                let shared = JobSpec::sim("stream", fast_cfg(7));
                let own = JobSpec::sim("gups", fast_cfg(100 + i));
                let mut payloads = Vec::new();
                for spec in [shared, own] {
                    let job = match c.submit(&spec).expect("submits") {
                        Response::Accepted { job, .. } => job,
                        other => panic!("client {i}: submission not admitted: {other:?}"),
                    };
                    assert_eq!(job, spec.job_id(), "server agrees on the job id");
                    let state = c.wait(job, 60_000).expect("waits");
                    assert_eq!(state, JobState::Done, "client {i}: job {job}");
                    payloads.push(c.fetch(job).expect("fetches"));
                }
                payloads
            })
        })
        .collect();
    let results: Vec<Vec<String>> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // Every client got a real payload, and the shared job's bytes agree.
    for payloads in &results {
        assert_eq!(payloads.len(), 2);
        assert!(payloads.iter().all(|p| !p.is_empty()));
    }
    for other in &results[1..] {
        assert_eq!(results[0][0], other[0], "shared sim payloads identical");
    }

    let mut admin = ServeClient::connect(&addr, "admin").expect("connects");
    let stats = admin.stats().expect("stats");
    assert_eq!(metric(&stats, "serve/jobs_submitted"), 8);
    let executed = metric(&stats, "serve/sims_executed");
    assert_eq!(executed, 5, "5 distinct jobs, duplicates never simulate");
    assert!(
        metric(&stats, "serve/jobs_deduped") + metric(&stats, "serve/jobs_cached") == 3,
        "3 duplicate submissions resolved without execution:\n{stats}"
    );

    // Warm resubmission of the full distinct set: everything answers
    // cached, and the simulation counter does not move.
    let mut specs = vec![JobSpec::sim("stream", fast_cfg(7))];
    specs.extend((0..4).map(|i| JobSpec::sim("gups", fast_cfg(100 + i))));
    for spec in &specs {
        match admin.submit(spec).expect("resubmits") {
            Response::Accepted { state, cached, .. } => {
                assert_eq!(state, JobState::Done);
                assert!(cached, "{} must be a warm hit", spec.label());
            }
            other => panic!("warm resubmission rejected: {other:?}"),
        }
    }
    let stats = admin.stats().expect("stats");
    assert_eq!(
        metric(&stats, "serve/sims_executed"),
        executed,
        "warm resubmission executed zero simulations"
    );

    // Graceful shutdown: drain, join, and export the counters.
    admin.shutdown().expect("shutdown acked");
    let csv = handle.wait().expect("drains and exits");
    assert_eq!(metric(&csv, "serve/queue_depth"), 0, "queue drained");
    let metrics_file = out.join("serve").join("server-metrics.csv");
    assert_eq!(
        std::fs::read_to_string(&metrics_file).expect("metrics exported"),
        csv
    );
    let _ = std::fs::remove_dir_all(&out);
}

/// Acceptance: overflowing the bounded queue yields an explicit
/// backpressure rejection with a retry delay — never a hang or panic —
/// and the queue recovers once drained.
#[test]
fn queue_overflow_rejects_with_backpressure() {
    let out = scratch("overflow");
    let mut cfg = server_config(out.clone());
    cfg.workers = 1;
    cfg.admission = AdmissionConfig::for_capacity(3);
    // Dispatch starts paused so the queue fills deterministically.
    cfg.start_paused = true;
    let handle = serve(cfg).expect("server starts");
    let addr = handle.addr().to_string();

    let mut c = ServeClient::connect(&addr, "pressure").expect("connects");
    let specs: Vec<_> = (0..4)
        .map(|i| JobSpec::sim("gups", fast_cfg(500 + i)))
        .collect();
    let mut jobs = Vec::new();
    for spec in &specs[..3] {
        match c.submit(spec).expect("submits") {
            Response::Accepted {
                job,
                state: JobState::Queued,
                ..
            } => jobs.push(job),
            other => panic!("fill submission not queued: {other:?}"),
        }
    }
    // The queue is at capacity: the next distinct job is shed with an
    // explicit reason and a positive retry suggestion.
    match c.submit(&specs[3]).expect("overflow submit answers") {
        Response::Rejected {
            reason,
            retry_after_ms,
        } => {
            assert_eq!(reason, "queue-full");
            assert!(retry_after_ms > 0, "retry-after must be positive");
        }
        other => panic!("overflow must reject explicitly, got {other:?}"),
    }

    // Resume dispatch, drain the queue, and verify the shed job is
    // admitted once pressure is gone.
    c.resume().expect("resumes");
    for job in jobs {
        assert_eq!(c.wait(job, 60_000).expect("waits"), JobState::Done);
    }
    let retry = match c.submit(&specs[3]).expect("retries") {
        Response::Accepted { job, .. } => job,
        other => panic!("post-drain retry rejected: {other:?}"),
    };
    assert_eq!(c.wait(retry, 60_000).expect("waits"), JobState::Done);

    let stats = c.stats().expect("stats");
    assert_eq!(metric(&stats, "serve/jobs_rejected"), 1);
    assert_eq!(metric(&stats, "serve/jobs_rejected_queue_full"), 1);
    assert_eq!(metric(&stats, "serve/queue_peak"), 3);

    c.shutdown().expect("shutdown acked");
    handle.wait().expect("drains and exits");
    let _ = std::fs::remove_dir_all(&out);
}

/// Checked jobs run under the conformance harness and store a verdict
/// envelope; entry jobs render manifest artifacts. Both payloads are
/// fetchable, and a draining server sheds new submissions explicitly.
#[test]
fn checked_and_entry_jobs_round_trip_and_drain_rejects() {
    let out = scratch("kinds");
    let handle = serve(server_config(out.clone())).expect("server starts");
    let addr = handle.addr().to_string();
    let mut c = ServeClient::connect(&addr, "kinds").expect("connects");

    let mut checked = JobSpec::sim("sg", fast_cfg(3));
    checked.checked = true;
    let entry = JobSpec::entry("smoke", 1);
    for (spec, marker) in [(&checked, "# mac-serve checked result v1"), (&entry, "")] {
        let job = match c.submit(spec).expect("submits") {
            Response::Accepted { job, .. } => job,
            other => panic!("{}: not admitted: {other:?}", spec.label()),
        };
        assert_eq!(
            c.wait(job, 120_000).expect("waits"),
            JobState::Done,
            "{}",
            spec.label()
        );
        let payload = c.fetch(job).expect("fetches");
        assert!(payload.starts_with(marker), "{}", spec.label());
    }

    c.shutdown().expect("shutdown acked");
    // While draining (or after), new submissions are shed explicitly.
    match c.submit(&JobSpec::sim("gups", fast_cfg(9))) {
        Ok(Response::Rejected { reason, .. }) => assert_eq!(reason, "draining"),
        Ok(other) => panic!("draining server must shed, got {other:?}"),
        Err(_) => {} // server already exited and closed the socket: also fine
    }
    handle.wait().expect("drains and exits");
    let _ = std::fs::remove_dir_all(&out);
}
