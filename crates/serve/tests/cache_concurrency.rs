//! Concurrency stress for the shared artifact store: multiple `SimPool`s
//! and an [`ArtifactStore`] hammering the same `results/` tree at once
//! must never corrupt cache entries. Every write in that tree goes
//! through atomic temp-file + rename, so readers see either nothing or a
//! complete, decodable file — never a torn one.

use std::path::PathBuf;
use std::sync::Arc;

use mac_serve::{ArtifactStore, JobSpec};
use mac_sim::cachefmt;
use mac_sim::engine::{SimPool, SimRequest};
use mac_sim::experiment::ExperimentConfig;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mac-cache-stress-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(2);
    cfg.workload.scale = 1;
    cfg.workload.seed = seed;
    cfg.max_cycles = 50_000_000;
    cfg
}

/// Two independent pools (separate memo tables, shared disk cache) plus
/// the serve-side store race on the same request set. Afterwards every
/// cache file must decode, warm reads must be byte-identical across
/// readers, and a third cold pool must serve everything from disk.
#[test]
fn concurrent_pools_and_store_share_one_cache_without_corruption() {
    let root = scratch("pools");
    let cache = root.join("cache");
    let reqs: Arc<Vec<SimRequest>> = Arc::new(
        (0..6)
            .flat_map(|i| {
                let c = cfg(900 + i);
                ["gups", "stream"]
                    .into_iter()
                    .map(move |w| SimRequest::new(w, &c))
            })
            .collect(),
    );

    // Both pools race the full duplicate-heavy set concurrently. Each
    // request appears in both pools, so nearly every disk write races a
    // concurrent write or read of the same path.
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let cache = cache.clone();
            let reqs = Arc::clone(&reqs);
            std::thread::spawn(move || {
                let pool = SimPool::new(4).with_cache(&cache);
                pool.run_batch(&reqs)
            })
        })
        .collect();
    // Meanwhile the serve-side store reads and (re)writes the same tree.
    let store = ArtifactStore::new(&root);
    let store_specs: Vec<JobSpec> = (0..6).map(|i| JobSpec::sim("gups", cfg(900 + i))).collect();
    for _ in 0..50 {
        for spec in &store_specs {
            if let Some(text) = store.load(spec) {
                // A load must always be a complete, decodable payload.
                assert!(
                    cachefmt::decode_run(&text).is_some(),
                    "store returned an undecodable payload for {}",
                    spec.label()
                );
            }
        }
    }
    let results: Vec<_> = racers
        .into_iter()
        .map(|t| t.join().expect("racer thread"))
        .collect();

    // The two pools agree on every report (deterministic simulator).
    for (a, b) in results[0].iter().zip(&results[1]) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.hmc, b.hmc);
    }

    // Every cache file on disk decodes cleanly, and no temp litter
    // survived the renames.
    let mut files = 0;
    for entry in std::fs::read_dir(&cache).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            !name.contains(".tmp."),
            "leftover temp file {name} in shared cache"
        );
        if name.ends_with(".mrc") {
            let text = std::fs::read_to_string(&path).expect("readable");
            assert!(cachefmt::decode_run(&text).is_some(), "{name} is torn");
            files += 1;
        }
    }
    assert_eq!(files, reqs.len(), "every distinct request was cached");

    // A cold pool reads everything warm, byte-identically with the store.
    let cold = SimPool::new(2).with_cache(&cache);
    let warm = cold.run_batch(&reqs);
    assert_eq!(cold.sims_executed(), 0, "fully warm");
    for (a, b) in results[0].iter().zip(&warm) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.soc, b.soc);
    }
    for spec in &store_specs {
        let via_store = store.load(spec).expect("warm store read");
        let direct = std::fs::read_to_string(store.path_for(spec)).expect("file read");
        assert_eq!(via_store, direct, "store and raw reads agree byte-for-byte");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Interleaved writers on one store path: last rename wins, and every
/// intermediate read is complete. Exercises `atomic_write` under direct
/// contention on a single key.
#[test]
fn contended_single_key_writes_stay_atomic() {
    let root = scratch("single");
    let store = Arc::new(ArtifactStore::new(&root));
    let spec = JobSpec::sim("gups", cfg(4242));

    // Seed one valid payload so readers always have something to find.
    let pool = SimPool::new(1).with_cache(&store.cache_dir());
    let report = pool
        .run_batch(&[SimRequest::new("gups", &cfg(4242))])
        .pop()
        .expect("one report");

    let writers: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            let spec = spec.clone();
            let report = report.clone();
            std::thread::spawn(move || {
                for _ in 0..100 {
                    store.store_sim(&spec, &report).expect("write succeeds");
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut seen = 0;
                for _ in 0..200 {
                    if let Some(text) = store.load(&spec) {
                        assert!(cachefmt::decode_run(&text).is_some(), "torn read");
                        seen += 1;
                    }
                }
                seen
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    let seen: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(seen > 0, "readers observed the payload");
    let _ = std::fs::remove_dir_all(&root);
}
