//! Acceptance tests for MACS-1 `watch` streaming: live progress frames,
//! incremental metrics-sample chunks whose concatenation is
//! byte-identical to the server-side artifact, terminal replay for late
//! subscribers, and the periodic counters flush.

use std::path::PathBuf;

use mac_serve::{serve, Frame, JobSpec, JobState, Response, ServeClient, ServerConfig};
use mac_sim::experiment::ExperimentConfig;
use mac_types::JobId;

/// A unique scratch directory per test (removed on entry so reruns start
/// cold).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mac-serve-watch-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(2);
    cfg.workload.scale = 1;
    cfg.workload.seed = seed;
    cfg.max_cycles = 50_000_000;
    cfg
}

fn server_config(out: PathBuf) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        sim_jobs: 1,
        out_dir: out,
        // Small sampling interval and fast poll so even a short
        // simulation yields several streamed chunks.
        metrics_interval: 1_000,
        watch_poll_ms: 5,
        flush_every: 1,
        ..ServerConfig::default()
    }
}

struct Collected {
    progress: u64,
    samples: Vec<String>,
    end_state: JobState,
}

fn watch_collect(addr: &str, job: JobId) -> Collected {
    let mut c = ServeClient::connect(addr, "watcher").expect("connects");
    let mut progress = 0u64;
    let mut samples = Vec::new();
    let end_state = c
        .watch(job, |frame, body| match frame {
            Frame::Progress { .. } => progress += 1,
            Frame::Sample { .. } => samples.push(body.expect("sample carries chunk").to_string()),
            Frame::End { .. } => {}
        })
        .expect("stream completes");
    Collected {
        progress,
        samples,
        end_state,
    }
}

/// Acceptance: watching a live job yields ≥1 progress frame and ≥2
/// metrics sample chunks whose concatenation is byte-identical to the
/// job's on-disk metrics artifact; a late subscriber replays the same
/// bytes; and the periodic flush exported counters before shutdown.
#[test]
fn live_watch_streams_progress_and_byte_identical_samples() {
    let out = scratch("live");
    let mut cfg = server_config(out.clone());
    // Start paused so the watcher provably attaches before execution.
    cfg.start_paused = true;
    let handle = serve(cfg).expect("server starts");
    let addr = handle.addr().to_string();

    let mut c = ServeClient::connect(&addr, "submitter").expect("connects");
    let spec = JobSpec::sim("stream", fast_cfg(42));
    let job = match c.submit(&spec).expect("submits") {
        Response::Accepted { job, .. } => job,
        other => panic!("submission not admitted: {other:?}"),
    };

    // Subscribe while the job is still queued, then release it.
    let watcher = {
        let addr = addr.clone();
        std::thread::spawn(move || watch_collect(&addr, job))
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    c.resume().expect("resumes");
    let got = watcher.join().expect("watcher thread");

    assert_eq!(got.end_state, JobState::Done);
    assert!(got.progress >= 1, "no progress frames streamed");
    assert!(
        got.samples.len() >= 2,
        "want >=2 sample chunks on a live watch, got {}",
        got.samples.len()
    );

    let streamed: String = got.samples.concat();
    let artifact_path = out.join("serve").join(format!("job-{job}.metrics.csv"));
    let artifact = std::fs::read_to_string(&artifact_path).expect("metrics artifact written");
    assert_eq!(
        streamed, artifact,
        "streamed chunks must concatenate to the artifact bytes"
    );
    assert!(artifact.starts_with("# mac-metrics v1 interval=1000\n"));
    assert!(artifact.lines().count() > 4, "expected several sample rows");

    // A late subscriber (job already terminal) replays the same bytes.
    let late = watch_collect(&addr, job);
    assert_eq!(late.end_state, JobState::Done);
    assert_eq!(late.samples.concat(), artifact, "terminal replay differs");

    // flush_every=1: the counters CSV is already on disk pre-shutdown.
    let counters =
        std::fs::read_to_string(out.join("serve").join("server-metrics.csv")).expect("flushed");
    assert!(counters.contains("serve/jobs_completed"));
    assert!(counters.contains("serve/retry_after_ms"));

    c.shutdown().expect("shutdown acked");
    handle.wait().expect("drains and exits");
    let _ = std::fs::remove_dir_all(&out);
}

/// Watching an unknown job answers an explicit error, not a hang.
#[test]
fn watch_unknown_job_errors() {
    let out = scratch("unknown");
    let handle = serve(server_config(out.clone())).expect("server starts");
    let addr = handle.addr().to_string();
    let mut c = ServeClient::connect(&addr, "nosy").expect("connects");
    let err = c
        .watch(JobId::from(0xdeadbeef), |_, _| {})
        .expect_err("unknown job must error");
    assert!(err.to_string().contains("no such job"), "{err}");
    c.shutdown().expect("shutdown acked");
    handle.wait().expect("drains and exits");
    let _ = std::fs::remove_dir_all(&out);
}

/// `wait_backoff` reaches the terminal state without busy-polling: the
/// round-trip count stays far below what a tight poll loop would make.
#[test]
fn wait_backoff_is_not_a_busy_poll() {
    let out = scratch("backoff");
    let handle = serve(server_config(out.clone())).expect("server starts");
    let addr = handle.addr().to_string();
    let mut c = ServeClient::connect(&addr, "waiter").expect("connects");
    let spec = JobSpec::sim("gups", fast_cfg(77));
    let job = match c.submit(&spec).expect("submits") {
        Response::Accepted { job, .. } => job,
        other => panic!("submission not admitted: {other:?}"),
    };
    let (state, round_trips) = c.wait_backoff(job, 120_000, None).expect("waits");
    assert_eq!(state, JobState::Done);
    assert!(
        round_trips <= 80,
        "wait_backoff made {round_trips} round trips — that is a busy poll"
    );
    c.shutdown().expect("shutdown acked");
    handle.wait().expect("drains and exits");
    let _ = std::fs::remove_dir_all(&out);
}
