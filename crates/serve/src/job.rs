//! The deterministic job model: what a submission *is*, how it is
//! keyed, and how it runs.
//!
//! A job is either a **manifest entry** (one of `mac-bench`'s catalog
//! experiments, producing rendered artifact tables) or a **raw
//! configuration** (one workload on one [`ExperimentConfig`], producing
//! a cache-format run report). Either way its identity is a 128-bit
//! content address — the *same* fingerprints the engine's result cache
//! uses — so:
//!
//! * two clients submitting equivalent work get the same [`JobId`] and
//!   share one execution (in-flight dedup), and
//! * a job whose result is already in the shared store (including one a
//!   plain `mac-bench` run produced earlier) completes instantly with
//!   zero simulations.
//!
//! Raw-config submissions travel as flat MACS-1 fields (`workload`,
//! `threads`, `scale`, `maxcycles`, `nomac`, ARQ knobs, net shape …)
//! applied over the paper's Table 1 configuration, the same
//! base-plus-overrides idiom as the fuzz reproducer format.

use mac_sim::engine::{experiment_cache_key, SimRequest};
use mac_sim::experiment::ExperimentConfig;
use mac_types::{CubeMapping, JobId, MacPlacement, NetTopology};

use crate::proto::{Fields, Msg, Scalar};

/// What a job runs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// A manifest entry by name, at a workload scale. Produces the
    /// entry's rendered artifacts (the `.art` payload).
    Entry {
        /// Manifest entry name (`smoke`, `fig10`, …).
        name: String,
        /// Workload scale factor (as `mac-bench --scale`).
        scale: u32,
    },
    /// One workload on one full configuration. Produces the run report
    /// in the `.mrc` cache format.
    Sim {
        /// Workload registry name (`sg`, `stream`, …).
        workload: String,
        /// The complete configuration to simulate (boxed: a full config
        /// is much larger than the entry variant).
        cfg: Box<ExperimentConfig>,
    },
}

/// A complete submission: the work plus execution options.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// Attach the mac-check conformance harness (invariants + oracle
    /// diff). Only meaningful for [`JobKind::Sim`]; checked jobs always
    /// execute (the attachment is observational but the verdict is the
    /// point), so they bypass the warm-result path.
    pub checked: bool,
}

impl JobSpec {
    /// A manifest-entry job.
    pub fn entry(name: &str, scale: u32) -> Self {
        JobSpec {
            kind: JobKind::Entry {
                name: name.to_string(),
                scale,
            },
            checked: false,
        }
    }

    /// A raw-config job.
    pub fn sim(workload: &str, cfg: ExperimentConfig) -> Self {
        JobSpec {
            kind: JobKind::Sim {
                workload: workload.to_string(),
                cfg: Box::new(cfg),
            },
            checked: false,
        }
    }

    /// The job's content-addressed identity. Sim jobs reuse the engine's
    /// `SimRequest` fingerprint and entry jobs the engine's experiment
    /// key, so server jobs and CLI runs share cache entries bit-for-bit.
    /// Checked jobs get a distinct key (their artifact embeds the
    /// conformance verdict).
    pub fn job_id(&self) -> JobId {
        let fp = match &self.kind {
            JobKind::Entry { name, scale } => experiment_cache_key(name, *scale),
            JobKind::Sim { workload, cfg } => {
                let base = SimRequest::new(workload, cfg).fingerprint();
                if self.checked {
                    // Fold the checked flag in by hashing the base key
                    // under a distinct label.
                    let mut h = mac_types::Fnv128::new();
                    h.write_str("mac-serve/checked");
                    h.write_u64(base as u64);
                    h.write_u64((base >> 64) as u64);
                    h.finish()
                } else {
                    base
                }
            }
        };
        JobId::from(fp)
    }

    /// Human-readable label for logs and counters.
    pub fn label(&self) -> String {
        match &self.kind {
            JobKind::Entry { name, scale } => format!("entry:{name}@{scale}"),
            JobKind::Sim { workload, .. } => {
                if self.checked {
                    format!("sim:{workload}+checked")
                } else {
                    format!("sim:{workload}")
                }
            }
        }
    }

    /// Add this spec's fields to a `submit` message.
    pub fn fill_fields(&self, mut m: Msg) -> Msg {
        match &self.kind {
            JobKind::Entry { name, scale } => {
                m = m.str("entry", name).num("scale", *scale as u64);
            }
            JobKind::Sim { workload, cfg } => {
                m = m
                    .str("workload", workload)
                    .num("threads", cfg.workload.threads as u64)
                    .num("scale", cfg.workload.scale as u64)
                    .num("seed", cfg.workload.seed)
                    .num("maxcycles", cfg.max_cycles)
                    .flag("nomac", cfg.system.mac_disabled)
                    .num("arq", cfg.system.mac.arq_entries as u64)
                    .num("pop", cfg.system.mac.pop_interval)
                    .num("accepts", cfg.system.mac.accepts_per_cycle as u64)
                    .flag("bypass", cfg.system.mac.bypass_enabled)
                    .flag("hiding", cfg.system.mac.latency_hiding);
                if cfg.system.net.enabled {
                    m = m
                        .num("cubes", cfg.system.net.cubes as u64)
                        .str("topology", topology_token(cfg.system.net.topology))
                        .str(
                            "placement",
                            match cfg.system.net.placement {
                                MacPlacement::HostOnly => "host",
                                MacPlacement::PerCube => "percube",
                            },
                        )
                        .str(
                            "mapping",
                            match cfg.system.net.mapping {
                                CubeMapping::Contiguous => "contig",
                                CubeMapping::Interleaved => "interleave",
                            },
                        );
                }
                if self.checked {
                    m = m.flag("checked", true);
                }
            }
        }
        m
    }

    /// Build a spec from a `submit` message's fields. `entry=` selects a
    /// manifest-entry job; otherwise `workload=` (required) starts from
    /// the paper configuration and applies any overrides present.
    pub fn from_fields(f: &Fields) -> Result<JobSpec, String> {
        let num = |key: &str| f.get(key).and_then(Scalar::as_u64);
        let flag = |key: &str| f.get(key).and_then(Scalar::as_bool);
        if let Some(entry) = f.get("entry").and_then(Scalar::as_str) {
            if mac_sim::manifest::manifest()
                .iter()
                .all(|e| e.name != entry)
            {
                return Err(format!("unknown manifest entry `{entry}`"));
            }
            return Ok(JobSpec::entry(entry, num("scale").unwrap_or(1) as u32));
        }
        let Some(workload) = f.get("workload").and_then(Scalar::as_str) else {
            return Err("submit needs `entry` or `workload`".into());
        };
        if mac_workloads::by_name(workload).is_none() {
            return Err(format!("unknown workload `{workload}`"));
        }
        let threads = num("threads").unwrap_or(8).clamp(1, 64) as usize;
        let mut cfg = ExperimentConfig::paper(threads);
        if let Some(v) = num("scale") {
            cfg.workload.scale = v.min(u32::MAX as u64) as u32;
        }
        if let Some(v) = num("seed") {
            cfg.workload.seed = v;
        }
        if let Some(v) = num("maxcycles") {
            cfg.max_cycles = v.max(1);
        }
        if flag("nomac").unwrap_or(false) {
            cfg.system.mac_disabled = true;
        }
        if let Some(v) = num("arq") {
            cfg.system.mac.arq_entries = v.clamp(1, 4096) as usize;
        }
        if let Some(v) = num("pop") {
            cfg.system.mac.pop_interval = v.max(1);
        }
        if let Some(v) = num("accepts") {
            cfg.system.mac.accepts_per_cycle = v.clamp(1, 64) as usize;
        }
        if let Some(v) = flag("bypass") {
            cfg.system.mac.bypass_enabled = v;
        }
        if let Some(v) = flag("hiding") {
            cfg.system.mac.latency_hiding = v;
        }
        if let Some(cubes) = num("cubes") {
            let topology = match f
                .get("topology")
                .and_then(Scalar::as_str)
                .unwrap_or("chain")
            {
                "chain" => NetTopology::DaisyChain,
                "ring" => NetTopology::Ring,
                "mesh" => NetTopology::Mesh2x2,
                other => return Err(format!("unknown topology `{other}`")),
            };
            if topology == NetTopology::Mesh2x2 && cubes != 4 {
                return Err("mesh topology requires cubes=4".into());
            }
            let placement = match f
                .get("placement")
                .and_then(Scalar::as_str)
                .unwrap_or("host")
            {
                "host" => MacPlacement::HostOnly,
                "percube" => MacPlacement::PerCube,
                other => return Err(format!("unknown placement `{other}`")),
            };
            if !(1..=8).contains(&cubes) || !cubes.is_power_of_two() {
                return Err("cubes must be 1, 2, 4, or 8".into());
            }
            cfg.system = cfg.system.with_net(cubes as usize, topology, placement);
            if let Some(mapping) = f.get("mapping").and_then(Scalar::as_str) {
                cfg.system.net.mapping = match mapping {
                    "contig" => CubeMapping::Contiguous,
                    "interleave" => CubeMapping::Interleaved,
                    other => return Err(format!("unknown mapping `{other}`")),
                };
            }
        }
        let mut spec = JobSpec::sim(workload, cfg);
        spec.checked = flag("checked").unwrap_or(false);
        Ok(spec)
    }
}

fn topology_token(t: NetTopology) -> &'static str {
    match t {
        NetTopology::DaisyChain => "chain",
        NetTopology::Ring => "ring",
        NetTopology::Mesh2x2 => "mesh",
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; its artifact is in the store.
    Done,
    /// Finished unsuccessfully (timed out at the cycle cap, or a checked
    /// job recorded conformance violations).
    Failed {
        /// Why the job failed.
        reason: String,
    },
}

impl JobState {
    /// Wire token for this state.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed { .. } => "failed",
        }
    }

    /// Parse a wire token (with the optional failure reason field).
    pub fn parse(token: &str, reason: Option<&str>) -> Result<JobState, String> {
        match token {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed {
                reason: reason.unwrap_or("unknown").to_string(),
            }),
            other => Err(format!("unknown job state `{other}`")),
        }
    }

    /// True once the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::decode_fields;

    fn round_trip(spec: &JobSpec) -> JobSpec {
        let line = spec.fill_fields(Msg::new("submit")).encode();
        JobSpec::from_fields(&decode_fields(&line).unwrap()).unwrap()
    }

    #[test]
    fn entry_spec_round_trips_and_keys_match_engine() {
        let spec = JobSpec::entry("smoke", 2);
        assert_eq!(round_trip(&spec), spec);
        assert_eq!(
            spec.job_id().as_u128(),
            experiment_cache_key("smoke", 2),
            "entry jobs share the engine's artifact-cache key"
        );
    }

    #[test]
    fn sim_spec_round_trips_and_keys_match_engine() {
        let mut cfg = ExperimentConfig::paper(4);
        cfg.workload.scale = 3;
        cfg.max_cycles = 1_000_000;
        cfg.system.mac.arq_entries = 16;
        let spec = JobSpec::sim("sg", cfg.clone());
        assert_eq!(round_trip(&spec), spec);
        assert_eq!(
            spec.job_id().as_u128(),
            SimRequest::new("sg", &cfg).fingerprint(),
            "sim jobs share the engine's result-cache key"
        );
    }

    #[test]
    fn net_shape_round_trips() {
        let mut cfg = ExperimentConfig::paper(4);
        cfg.system = cfg
            .system
            .with_net(4, NetTopology::Ring, MacPlacement::PerCube);
        cfg.system.net.mapping = CubeMapping::Contiguous;
        let spec = JobSpec::sim("sg", cfg);
        assert_eq!(round_trip(&spec), spec);
    }

    #[test]
    fn checked_jobs_get_distinct_ids() {
        let cfg = ExperimentConfig::paper(2);
        let plain = JobSpec::sim("sg", cfg.clone());
        let mut checked = JobSpec::sim("sg", cfg);
        checked.checked = true;
        assert_eq!(round_trip(&checked), checked);
        assert_ne!(plain.job_id(), checked.job_id());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let bad = [
            "{\"proto\":\"macs-1\",\"type\":\"submit\"}",
            "{\"proto\":\"macs-1\",\"type\":\"submit\",\"entry\":\"nope\"}",
            "{\"proto\":\"macs-1\",\"type\":\"submit\",\"workload\":\"nope\"}",
            "{\"proto\":\"macs-1\",\"type\":\"submit\",\"workload\":\"sg\",\"cubes\":3}",
            "{\"proto\":\"macs-1\",\"type\":\"submit\",\"workload\":\"sg\",\"cubes\":2,\"topology\":\"mesh\"}",
        ];
        for line in bad {
            let f = decode_fields(line).unwrap();
            assert!(JobSpec::from_fields(&f).is_err(), "{line}");
        }
    }

    #[test]
    fn state_tokens_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed {
                reason: "timeout".into(),
            },
        ] {
            let reason = match &s {
                JobState::Failed { reason } => Some(reason.as_str()),
                _ => None,
            };
            assert_eq!(JobState::parse(s.as_str(), reason).unwrap(), s);
        }
        assert!(JobState::parse("nope", None).is_err());
    }
}
