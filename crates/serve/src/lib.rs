//! # mac-serve — simulation-as-a-service
//!
//! A persistent, multi-client job server over the `mac-sim` experiment
//! engine. Instead of paying process startup and a cold cache for every
//! `mac-bench` invocation, clients submit simulation jobs to a long-lived
//! server that owns one shared [`SimPool`](mac_sim::engine::SimPool) and
//! one shared content-addressed artifact store under `results/`:
//!
//! * **Deterministic job model** ([`job`]) — a submission is either a
//!   manifest entry or a raw system configuration, keyed by the same
//!   128-bit fingerprint the result cache uses. Identical submissions
//!   dedupe in flight; warm hits return instantly from the store.
//! * **Admission control** ([`admission`]) — a pure, deterministic
//!   supervisor in the evidence-accumulation + hysteresis idiom: a
//!   bounded queue, per-client fairness caps, and load shedding with
//!   explicit `retry-after` backpressure responses instead of hangs.
//! * **Versioned wire protocol** ([`proto`]) — line-delimited flat JSON
//!   over TCP, framed and versioned like the repo's `.mrc`/`.macb` text
//!   formats (`"proto":"macs-1"` on every message).
//! * **Server** ([`server`]) and **client** ([`client`]) — a std-only
//!   threaded TCP server with submit/poll/wait/fetch/stats verbs,
//!   pause/resume flow control, drain-then-exit graceful shutdown, and
//!   server-level counters exported in the mac-metrics v1 format.
//!
//! The CLI surface lives in `mac-bench`: `mac-bench serve` starts a
//! server, `mac-bench client …` drives one. See DESIGN.md §13 for the
//! architecture and README "Serving simulations" for a quick-start.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod job;
pub mod proto;
pub mod server;
pub mod store;

pub use admission::{Admission, AdmissionConfig, Decision, Observation};
pub use client::ServeClient;
pub use job::{JobKind, JobSpec, JobState};
pub use proto::{Frame, Request, Response, PROTO_VERSION};
pub use server::{serve, ServerConfig, ServerHandle};
pub use store::ArtifactStore;
