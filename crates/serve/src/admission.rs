//! Admission control: a pure, deterministic load-shedding supervisor.
//!
//! The supervisor decides, for every submission, whether to **accept**
//! the job into the bounded queue or to **shed** it with an explicit
//! retry-after backpressure answer. It is written in the
//! evidence-accumulation + hysteresis idiom the ROADMAP prescribes for
//! runtime controllers: a plain state machine over integers, with no
//! clocks, no randomness, and no I/O, so the same observation sequence
//! always produces the same decision sequence (snapshot/restore safe,
//! and unit-testable without a server).
//!
//! # Rules
//!
//! 1. **Hard capacity** — a full queue always sheds (`queue-full`).
//! 2. **Per-client fairness** — a client already holding
//!    `per_client_inflight` queued/running jobs is shed
//!    (`client-limit`) without touching the pressure evidence: one
//!    greedy client must not push the server into overload mode for
//!    everyone else.
//! 3. **Evidence + hysteresis** — every decision tick observes queue
//!    depth. Depth at or above the high watermark accumulates pressure
//!    evidence; depth at or below the low watermark drains it (twice as
//!    fast, so recovery is sticky-free). When evidence crosses
//!    `shed_threshold` the supervisor enters *overload* mode and sheds
//!    all new work (`overload`) until the evidence drains to zero — the
//!    hysteresis band prevents accept/shed flapping around a single
//!    watermark.
//!
//! Suggested retry delays scale linearly with queue fullness, so
//! clients observing deeper queues back off longer — a deterministic
//! `Retry-After` analogue.

/// Tunables for the admission supervisor.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Hard bound on queued (not yet running) jobs.
    pub queue_capacity: usize,
    /// Queue depth at or above which pressure evidence accumulates.
    pub high_watermark: usize,
    /// Queue depth at or below which pressure evidence drains.
    pub low_watermark: usize,
    /// Evidence level that flips the supervisor into overload mode.
    pub shed_threshold: u32,
    /// Most queued + running jobs one client may hold.
    pub per_client_inflight: usize,
    /// Base retry suggestion in milliseconds; scaled by queue fullness.
    pub retry_base_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 64,
            high_watermark: 48,
            low_watermark: 16,
            shed_threshold: 4,
            per_client_inflight: 16,
            retry_base_ms: 200,
        }
    }
}

impl AdmissionConfig {
    /// Derive watermarks for a given queue capacity (¾ high, ¼ low).
    pub fn for_capacity(queue_capacity: usize) -> Self {
        AdmissionConfig {
            queue_capacity,
            high_watermark: (queue_capacity * 3 / 4).max(1),
            low_watermark: queue_capacity / 4,
            ..AdmissionConfig::default()
        }
    }
}

/// What the supervisor sees at one decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Jobs currently queued (excluding running).
    pub queue_depth: usize,
    /// Jobs currently executing on workers.
    pub running: usize,
    /// Queued + running jobs already held by the submitting client.
    pub client_inflight: usize,
}

/// The supervisor's verdict for one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Enqueue the job.
    Accept,
    /// Shed the job; the client should retry after the given delay.
    Shed {
        /// Which rule fired: `queue-full`, `client-limit`, or
        /// `overload`.
        reason: &'static str,
        /// Suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
}

impl Decision {
    /// True for [`Decision::Accept`].
    pub fn accepted(&self) -> bool {
        matches!(self, Decision::Accept)
    }
}

/// The supervisor itself: configuration plus accumulated evidence.
#[derive(Debug, Clone)]
pub struct Admission {
    cfg: AdmissionConfig,
    evidence: u32,
    overloaded: bool,
}

impl Admission {
    /// A fresh supervisor with zero accumulated evidence.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            evidence: 0,
            overloaded: false,
        }
    }

    /// Current pressure evidence (for counters/telemetry).
    pub fn evidence(&self) -> u32 {
        self.evidence
    }

    /// True while the supervisor is shedding on pressure (rule 3).
    pub fn overloaded(&self) -> bool {
        self.overloaded
    }

    /// The retry suggestion a shed answer would carry at the given
    /// queue depth — exported as the `serve/retry_after_ms` stats gauge
    /// so clients can pace their polling off live server pressure.
    pub fn retry_hint_ms(&self, queue_depth: usize) -> u64 {
        self.retry_after_ms(queue_depth)
    }

    /// Retry suggestion for the observed queue depth: base delay scaled
    /// up to 4× as the queue fills. Deterministic in the observation.
    fn retry_after_ms(&self, queue_depth: usize) -> u64 {
        let cap = self.cfg.queue_capacity.max(1) as u64;
        let fill = (queue_depth as u64).min(cap);
        self.cfg.retry_base_ms + (3 * self.cfg.retry_base_ms * fill) / cap
    }

    /// Fold one observation into the evidence counters (rule 3's
    /// accumulate/drain step). Called on every decision; exposed so the
    /// server can also tick it when jobs *finish* and pressure falls.
    pub fn observe(&mut self, queue_depth: usize) {
        if queue_depth >= self.cfg.high_watermark {
            self.evidence = self.evidence.saturating_add(1);
        } else if queue_depth <= self.cfg.low_watermark {
            self.evidence = self.evidence.saturating_sub(2);
        }
        if self.evidence >= self.cfg.shed_threshold {
            self.overloaded = true;
        } else if self.evidence == 0 {
            self.overloaded = false;
        }
    }

    /// Decide one submission. Pure in (state, observation); mutates only
    /// the evidence counters.
    pub fn decide(&mut self, obs: &Observation) -> Decision {
        self.observe(obs.queue_depth);
        if obs.queue_depth >= self.cfg.queue_capacity {
            return Decision::Shed {
                reason: "queue-full",
                retry_after_ms: self.retry_after_ms(obs.queue_depth),
            };
        }
        if obs.client_inflight >= self.cfg.per_client_inflight {
            return Decision::Shed {
                reason: "client-limit",
                retry_after_ms: self.retry_after_ms(obs.queue_depth),
            };
        }
        if self.overloaded {
            return Decision::Shed {
                reason: "overload",
                retry_after_ms: self.retry_after_ms(obs.queue_depth),
            };
        }
        Decision::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: 8,
            high_watermark: 6,
            low_watermark: 2,
            shed_threshold: 3,
            per_client_inflight: 4,
            retry_base_ms: 100,
        }
    }

    fn obs(queue_depth: usize) -> Observation {
        Observation {
            queue_depth,
            running: 0,
            client_inflight: 0,
        }
    }

    #[test]
    fn accepts_when_idle() {
        let mut a = Admission::new(cfg());
        assert_eq!(a.decide(&obs(0)), Decision::Accept);
        assert!(!a.overloaded());
    }

    #[test]
    fn full_queue_always_sheds() {
        let mut a = Admission::new(cfg());
        match a.decide(&obs(8)) {
            Decision::Shed {
                reason,
                retry_after_ms,
            } => {
                assert_eq!(reason, "queue-full");
                assert_eq!(retry_after_ms, 400, "4x base at a full queue");
            }
            d => panic!("expected shed, got {d:?}"),
        }
    }

    #[test]
    fn client_limit_sheds_without_building_evidence() {
        let mut a = Admission::new(cfg());
        for _ in 0..10 {
            let d = a.decide(&Observation {
                queue_depth: 0,
                running: 0,
                client_inflight: 4,
            });
            assert!(matches!(
                d,
                Decision::Shed {
                    reason: "client-limit",
                    ..
                }
            ));
        }
        assert_eq!(a.evidence(), 0, "low queue drains, never accumulates");
        // Other clients are unaffected.
        assert_eq!(a.decide(&obs(0)), Decision::Accept);
    }

    #[test]
    fn hysteresis_enters_overload_then_recovers_only_at_zero() {
        let mut a = Admission::new(cfg());
        // Pressure builds: 3 ticks at/above the high watermark.
        for _ in 0..2 {
            a.decide(&obs(6));
            assert!(!a.overloaded());
        }
        a.decide(&obs(6));
        assert!(a.overloaded());
        assert!(matches!(
            a.decide(&obs(5)),
            Decision::Shed {
                reason: "overload",
                ..
            }
        ));
        // Mid-band depth (between watermarks) neither builds nor drains:
        // still shedding — that is the hysteresis.
        assert!(matches!(
            a.decide(&obs(4)),
            Decision::Shed {
                reason: "overload",
                ..
            }
        ));
        // Depth at/below the low watermark drains evidence to zero.
        a.observe(2);
        a.observe(2);
        assert!(!a.overloaded(), "evidence drained: {}", a.evidence());
        assert_eq!(a.decide(&obs(2)), Decision::Accept);
    }

    #[test]
    fn decision_sequence_is_deterministic() {
        let seq: Vec<usize> = vec![0, 3, 6, 6, 6, 7, 5, 2, 2, 2, 0, 6];
        let run = |mut a: Admission| -> Vec<Decision> {
            seq.iter().map(|&d| a.decide(&obs(d))).collect()
        };
        assert_eq!(run(Admission::new(cfg())), run(Admission::new(cfg())));
    }

    #[test]
    fn for_capacity_derives_sane_watermarks() {
        let c = AdmissionConfig::for_capacity(100);
        assert_eq!(c.queue_capacity, 100);
        assert_eq!(c.high_watermark, 75);
        assert_eq!(c.low_watermark, 25);
        let tiny = AdmissionConfig::for_capacity(1);
        assert!(tiny.high_watermark >= 1);
    }
}
