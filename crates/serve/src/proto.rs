//! The MACS-1 wire protocol: versioned, line-delimited flat JSON.
//!
//! # Framing
//!
//! Every message — request or response — is **one line** of JSON holding
//! a single flat object whose values are strings, non-negative integers,
//! or booleans (no nesting, no arrays, no floats). Every message carries
//! `"proto":"macs-1"`; a server or client that sees any other value must
//! reject the message, exactly as the `.mrc`/`.macb` decoders reject
//! unknown format versions. Messages that carry a bulk payload (fetched
//! artifacts, the stats export) say so with a `"lines":N` field: the
//! next `N` raw lines after the JSON line are the payload, verbatim.
//!
//! ```text
//! C: {"proto":"macs-1","type":"submit","client":"ci","workload":"sg","scale":1}
//! S: {"proto":"macs-1","type":"accepted","job":"<32 hex>","state":"queued","dedup":false,"cached":false,"queuepos":0}
//! C: {"proto":"macs-1","type":"poll","job":"<32 hex>"}
//! S: {"proto":"macs-1","type":"status","job":"<32 hex>","state":"done"}
//! ```
//!
//! Flat scalar objects keep the codec tiny (no external JSON dependency,
//! which this offline workspace cannot take) while staying line-oriented
//! and greppable, in the same spirit as the repo's other text formats.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mac_types::JobId;

use crate::job::{JobSpec, JobState};

/// Protocol version spoken by this build. Bump on any framing or field
/// semantics change, like `CACHE_FORMAT_VERSION`.
pub const PROTO_VERSION: u32 = 1;

/// The `"proto"` tag every MACS-1 message carries.
pub const PROTO_TAG: &str = "macs-1";

/// A scalar JSON value — the only kind MACS-1 messages may hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scalar {
    /// A JSON string.
    Str(String),
    /// A non-negative integer.
    Num(u64),
    /// A boolean.
    Bool(bool),
}

impl Scalar {
    /// The string value, if this is a [`Scalar::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is a [`Scalar::Num`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a [`Scalar::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// One parsed MACS-1 message: a flat map of scalar fields.
pub type Fields = BTreeMap<String, Scalar>;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Encode a field map as one line of flat JSON (no trailing newline).
/// Fields are emitted in sorted order, so encoding is deterministic.
pub fn encode_fields(fields: &Fields) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in fields {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":", json_escape(k));
        match v {
            Scalar::Str(s) => {
                let _ = write!(out, "\"{}\"", json_escape(s));
            }
            Scalar::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Scalar::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push('}');
    out
}

/// Parse one line of flat JSON into a field map. Rejects nesting,
/// arrays, null, floats, negative numbers, duplicate keys, and trailing
/// garbage — everything MACS-1 does not use.
pub fn decode_fields(line: &str) -> Result<Fields, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Fields::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.scalar()?;
            if fields.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing garbage after object".into());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected `{}`, got {other:?}", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit `{}`", d as char))?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("raw control byte in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 multi-byte sequences byte-wise.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = end;
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                    return Err("floats are not part of MACS-1".into());
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
                text.parse()
                    .map(Scalar::Num)
                    .map_err(|e| format!("bad number `{text}`: {e}"))
            }
            Some(b't') | Some(b'f') => {
                for (word, val) in [("true", true), ("false", false)] {
                    if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                        self.pos += word.len();
                        return Ok(Scalar::Bool(val));
                    }
                }
                Err("bad literal".into())
            }
            other => Err(format!(
                "MACS-1 values are scalars only, got {:?}",
                other.map(|b| b as char)
            )),
        }
    }
}

/// A builder for one message's field map.
#[derive(Debug, Default)]
pub struct Msg {
    fields: Fields,
}

impl Msg {
    /// A message of the given `"type"`, pre-tagged with the protocol
    /// version.
    pub fn new(kind: &str) -> Self {
        let mut m = Msg {
            fields: Fields::new(),
        };
        m.fields
            .insert("proto".into(), Scalar::Str(PROTO_TAG.into()));
        m.fields.insert("type".into(), Scalar::Str(kind.into()));
        m
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, val: &str) -> Self {
        self.fields.insert(key.into(), Scalar::Str(val.into()));
        self
    }

    /// Add an integer field.
    pub fn num(mut self, key: &str, val: u64) -> Self {
        self.fields.insert(key.into(), Scalar::Num(val));
        self
    }

    /// Add a boolean field.
    pub fn flag(mut self, key: &str, val: bool) -> Self {
        self.fields.insert(key.into(), Scalar::Bool(val));
        self
    }

    /// Render as one JSON line (no newline).
    pub fn encode(&self) -> String {
        encode_fields(&self.fields)
    }
}

/// Typed view of one client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version/identity handshake.
    Hello {
        /// Client-chosen name, used for per-client fairness accounting.
        client: String,
    },
    /// Submit a job for execution.
    Submit {
        /// Client name (fairness accounting key).
        client: String,
        /// What to run.
        spec: JobSpec,
    },
    /// Ask for a job's current state.
    Poll {
        /// The job to inspect.
        job: JobId,
    },
    /// Block (server-side) until the job leaves the queue/run states or
    /// the timeout elapses, then answer like `poll`.
    Wait {
        /// The job to wait for.
        job: JobId,
        /// Longest server-side wait, in milliseconds.
        timeout_ms: u64,
    },
    /// Fetch a completed job's artifact payload.
    Fetch {
        /// The job whose artifact to return.
        job: JobId,
    },
    /// Subscribe to a job's live stream: the server answers with
    /// [`Frame`] messages (progress, metrics samples) until the job
    /// reaches a terminal state and a final [`Frame::End`] closes the
    /// stream.
    Watch {
        /// The job to stream.
        job: JobId,
    },
    /// Fetch the server counters as a mac-metrics v1 CSV payload.
    Stats,
    /// Stop dispatching queued jobs to workers (admin flow control).
    Pause,
    /// Resume dispatching after a pause.
    Resume,
    /// Drain the queue, then exit the serve loop.
    Shutdown,
}

fn get_str(f: &Fields, key: &str) -> Result<String, String> {
    f.get(key)
        .and_then(Scalar::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing/invalid string field `{key}`"))
}

fn get_job(f: &Fields) -> Result<JobId, String> {
    get_str(f, "job")?
        .parse()
        .map_err(|e| format!("bad job id: {e}"))
}

/// Check the `"proto"` tag and pull the `"type"` field.
pub fn message_type(f: &Fields) -> Result<String, String> {
    match f.get("proto").and_then(Scalar::as_str) {
        Some(PROTO_TAG) => {}
        Some(other) => return Err(format!("unsupported protocol `{other}`")),
        None => return Err("missing `proto` tag".into()),
    }
    get_str(f, "type")
}

impl Request {
    /// Parse one request line.
    pub fn decode(line: &str) -> Result<Request, String> {
        let f = decode_fields(line)?;
        let kind = message_type(&f)?;
        match kind.as_str() {
            "hello" => Ok(Request::Hello {
                client: get_str(&f, "client").unwrap_or_default(),
            }),
            "submit" => Ok(Request::Submit {
                client: get_str(&f, "client").unwrap_or_else(|_| "anonymous".into()),
                spec: JobSpec::from_fields(&f)?,
            }),
            "poll" => Ok(Request::Poll { job: get_job(&f)? }),
            "wait" => Ok(Request::Wait {
                job: get_job(&f)?,
                timeout_ms: f.get("timeoutms").and_then(Scalar::as_u64).unwrap_or(0),
            }),
            "fetch" => Ok(Request::Fetch { job: get_job(&f)? }),
            "watch" => Ok(Request::Watch { job: get_job(&f)? }),
            "stats" => Ok(Request::Stats),
            "pause" => Ok(Request::Pause),
            "resume" => Ok(Request::Resume),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Render as one request line (no newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { client } => Msg::new("hello").str("client", client).encode(),
            Request::Submit { client, spec } => {
                let mut m = Msg::new("submit").str("client", client);
                m = spec.fill_fields(m);
                m.encode()
            }
            Request::Poll { job } => Msg::new("poll").str("job", &job.to_string()).encode(),
            Request::Wait { job, timeout_ms } => Msg::new("wait")
                .str("job", &job.to_string())
                .num("timeoutms", *timeout_ms)
                .encode(),
            Request::Fetch { job } => Msg::new("fetch").str("job", &job.to_string()).encode(),
            Request::Watch { job } => Msg::new("watch").str("job", &job.to_string()).encode(),
            Request::Stats => Msg::new("stats").encode(),
            Request::Pause => Msg::new("pause").encode(),
            Request::Resume => Msg::new("resume").encode(),
            Request::Shutdown => Msg::new("shutdown").encode(),
        }
    }
}

/// Typed view of one server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake answer.
    Hello {
        /// Server protocol version (always [`PROTO_VERSION`] here).
        version: u32,
    },
    /// The submission was admitted (or matched an existing job).
    Accepted {
        /// The job's content-addressed identity.
        job: JobId,
        /// State at admission time.
        state: JobState,
        /// True when this submission matched a job already queued or
        /// running (in-flight dedup).
        dedup: bool,
        /// True when the result was already in the artifact store and no
        /// simulation will run at all.
        cached: bool,
        /// Queue position at admission (0 = next; absent when not
        /// queued).
        queue_pos: Option<u64>,
    },
    /// The submission was shed. The client should retry no sooner than
    /// `retry_after_ms` from now.
    Rejected {
        /// Which admission rule fired (`queue-full`, `client-limit`,
        /// `overload`, `draining`).
        reason: String,
        /// Suggested backoff, in milliseconds.
        retry_after_ms: u64,
    },
    /// Poll/wait answer.
    Status {
        /// The job asked about.
        job: JobId,
        /// Its current state.
        state: JobState,
    },
    /// A header announcing `lines` payload lines follow, e.g. a fetched
    /// artifact or the stats CSV.
    Payload {
        /// What the payload is (`result`, `stats`).
        what: String,
        /// Number of raw lines following this message.
        lines: u64,
    },
    /// Generic acknowledgement (`pause`, `resume`, `shutdown`).
    Ack {
        /// Which verb is being acknowledged.
        what: String,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        msg: String,
    },
}

impl Response {
    /// Render as one response line (no newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Hello { version } => {
                Msg::new("hello").num("version", *version as u64).encode()
            }
            Response::Accepted {
                job,
                state,
                dedup,
                cached,
                queue_pos,
            } => {
                let mut m = Msg::new("accepted")
                    .str("job", &job.to_string())
                    .str("state", state.as_str())
                    .flag("dedup", *dedup)
                    .flag("cached", *cached);
                if let Some(pos) = queue_pos {
                    m = m.num("queuepos", *pos);
                }
                m.encode()
            }
            Response::Rejected {
                reason,
                retry_after_ms,
            } => Msg::new("rejected")
                .str("reason", reason)
                .num("retryafterms", *retry_after_ms)
                .encode(),
            Response::Status { job, state } => {
                let mut m = Msg::new("status")
                    .str("job", &job.to_string())
                    .str("state", state.as_str());
                if let JobState::Failed { reason } = state {
                    m = m.str("reason", reason);
                }
                m.encode()
            }
            Response::Payload { what, lines } => Msg::new("payload")
                .str("what", what)
                .num("lines", *lines)
                .encode(),
            Response::Ack { what } => Msg::new("ack").str("what", what).encode(),
            Response::Error { msg } => Msg::new("error").str("msg", msg).encode(),
        }
    }

    /// Parse one response line.
    pub fn decode(line: &str) -> Result<Response, String> {
        let f = decode_fields(line)?;
        let kind = message_type(&f)?;
        match kind.as_str() {
            "hello" => Ok(Response::Hello {
                version: f
                    .get("version")
                    .and_then(Scalar::as_u64)
                    .ok_or("missing version")? as u32,
            }),
            "accepted" => Ok(Response::Accepted {
                job: get_job(&f)?,
                state: JobState::parse(
                    &get_str(&f, "state")?,
                    f.get("reason").and_then(Scalar::as_str),
                )?,
                dedup: f
                    .get("dedup")
                    .and_then(Scalar::as_bool)
                    .ok_or("missing dedup")?,
                cached: f
                    .get("cached")
                    .and_then(Scalar::as_bool)
                    .ok_or("missing cached")?,
                queue_pos: f.get("queuepos").and_then(Scalar::as_u64),
            }),
            "rejected" => Ok(Response::Rejected {
                reason: get_str(&f, "reason")?,
                retry_after_ms: f
                    .get("retryafterms")
                    .and_then(Scalar::as_u64)
                    .ok_or("missing retryafterms")?,
            }),
            "status" => Ok(Response::Status {
                job: get_job(&f)?,
                state: JobState::parse(
                    &get_str(&f, "state")?,
                    f.get("reason").and_then(Scalar::as_str),
                )?,
            }),
            "payload" => Ok(Response::Payload {
                what: get_str(&f, "what")?,
                lines: f
                    .get("lines")
                    .and_then(Scalar::as_u64)
                    .ok_or("missing lines")?,
            }),
            "ack" => Ok(Response::Ack {
                what: get_str(&f, "what")?,
            }),
            "error" => Ok(Response::Error {
                msg: get_str(&f, "msg")?,
            }),
            other => Err(format!("unknown response type `{other}`")),
        }
    }
}

/// One streamed message on a `watch` subscription. Frames share the
/// MACS-1 framing rules: one flat-JSON line each, with bulk payloads
/// (metrics sample chunks) announced by a `"lines":N` field exactly
/// like [`Response::Payload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Live progress of the watched job.
    Progress {
        /// The watched job.
        job: JobId,
        /// Simulated cycles so far.
        cycles: u64,
        /// Requests retired (completions) so far.
        retired: u64,
        /// Coarse phase token (`queued`, `running`, `done`, `unknown`).
        phase: String,
    },
    /// A chunk of the job's metrics CSV stream: `lines` raw lines
    /// follow this frame, verbatim. Concatenating every sample chunk of
    /// one stream reproduces the job's on-disk metrics artifact
    /// byte-for-byte (cycle-major row order).
    Sample {
        /// The watched job.
        job: JobId,
        /// Number of raw payload lines following this frame.
        lines: u64,
    },
    /// Terminal frame: the job reached `state`; the stream is over.
    End {
        /// The watched job.
        job: JobId,
        /// The terminal state.
        state: JobState,
    },
}

impl Frame {
    /// Render as one frame line (no newline).
    pub fn encode(&self) -> String {
        match self {
            Frame::Progress {
                job,
                cycles,
                retired,
                phase,
            } => Msg::new("progress")
                .str("job", &job.to_string())
                .num("cycles", *cycles)
                .num("retired", *retired)
                .str("phase", phase)
                .encode(),
            Frame::Sample { job, lines } => Msg::new("sample")
                .str("job", &job.to_string())
                .num("lines", *lines)
                .encode(),
            Frame::End { job, state } => {
                let mut m = Msg::new("end")
                    .str("job", &job.to_string())
                    .str("state", state.as_str());
                if let JobState::Failed { reason } = state {
                    m = m.str("reason", reason);
                }
                m.encode()
            }
        }
    }

    /// Parse one frame line.
    pub fn decode(line: &str) -> Result<Frame, String> {
        let f = decode_fields(line)?;
        let kind = message_type(&f)?;
        match kind.as_str() {
            "progress" => Ok(Frame::Progress {
                job: get_job(&f)?,
                cycles: f
                    .get("cycles")
                    .and_then(Scalar::as_u64)
                    .ok_or("missing cycles")?,
                retired: f
                    .get("retired")
                    .and_then(Scalar::as_u64)
                    .ok_or("missing retired")?,
                phase: get_str(&f, "phase")?,
            }),
            "sample" => Ok(Frame::Sample {
                job: get_job(&f)?,
                lines: f
                    .get("lines")
                    .and_then(Scalar::as_u64)
                    .ok_or("missing lines")?,
            }),
            "end" => Ok(Frame::End {
                job: get_job(&f)?,
                state: JobState::parse(
                    &get_str(&f, "state")?,
                    f.get("reason").and_then(Scalar::as_str),
                )?,
            }),
            other => Err(format!("unknown frame type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_json_round_trips() {
        let mut f = Fields::new();
        f.insert("a".into(), Scalar::Str("x \"quoted\"\nline".into()));
        f.insert("b".into(), Scalar::Num(42));
        f.insert("c".into(), Scalar::Bool(true));
        let line = encode_fields(&f);
        assert_eq!(decode_fields(&line).unwrap(), f);
    }

    #[test]
    fn decoder_rejects_non_macs_shapes() {
        assert!(decode_fields("[1,2]").is_err());
        assert!(decode_fields("{\"a\":{}}").is_err());
        assert!(decode_fields("{\"a\":[1]}").is_err());
        assert!(decode_fields("{\"a\":null}").is_err());
        assert!(decode_fields("{\"a\":1.5}").is_err());
        assert!(decode_fields("{\"a\":-1}").is_err());
        assert!(decode_fields("{\"a\":1}{").is_err());
        assert!(decode_fields("{\"a\":1,\"a\":2}").is_err());
        assert!(decode_fields("{}").unwrap().is_empty());
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let mut f = Fields::new();
        f.insert("w".into(), Scalar::Str("héllo → wörld \u{1F600}".into()));
        let line = encode_fields(&f);
        assert_eq!(decode_fields(&line).unwrap(), f);
        // \u escapes on the wire decode too.
        let f2 = decode_fields("{\"w\":\"\\u0041\\u00e9\"}").unwrap();
        assert_eq!(f2.get("w").unwrap().as_str().unwrap(), "Aé");
    }

    #[test]
    fn version_tag_is_enforced() {
        let ok = Request::Poll {
            job: JobId::from(7),
        }
        .encode();
        assert!(Request::decode(&ok).is_ok());
        let bad = ok.replace("macs-1", "macs-9");
        assert!(Request::decode(&bad).unwrap_err().contains("unsupported"));
        assert!(Request::decode("{\"type\":\"poll\"}")
            .unwrap_err()
            .contains("proto"));
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                client: "ci".into(),
            },
            Request::Poll {
                job: JobId::from(0xabc),
            },
            Request::Wait {
                job: JobId::from(1),
                timeout_ms: 2500,
            },
            Request::Fetch {
                job: JobId::from(u128::MAX),
            },
            Request::Watch {
                job: JobId::from(0xdead),
            },
            Request::Stats,
            Request::Pause,
            Request::Resume,
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Hello { version: 1 },
            Response::Accepted {
                job: JobId::from(9),
                state: JobState::Queued,
                dedup: true,
                cached: false,
                queue_pos: Some(3),
            },
            Response::Rejected {
                reason: "queue-full".into(),
                retry_after_ms: 250,
            },
            Response::Status {
                job: JobId::from(9),
                state: JobState::Failed {
                    reason: "timeout".into(),
                },
            },
            Response::Payload {
                what: "result".into(),
                lines: 12,
            },
            Response::Ack {
                what: "shutdown".into(),
            },
            Response::Error {
                msg: "no such job".into(),
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            Frame::Progress {
                job: JobId::from(7),
                cycles: 123_456,
                retired: 789,
                phase: "running".into(),
            },
            Frame::Sample {
                job: JobId::from(7),
                lines: 42,
            },
            Frame::End {
                job: JobId::from(7),
                state: JobState::Done,
            },
            Frame::End {
                job: JobId::from(8),
                state: JobState::Failed {
                    reason: "hit the cycle cap".into(),
                },
            },
        ];
        for f in frames {
            assert_eq!(Frame::decode(&f.encode()).unwrap(), f, "{f:?}");
        }
        // Frames carry the proto tag and reject foreign versions.
        let line = Frame::Sample {
            job: JobId::from(1),
            lines: 0,
        }
        .encode();
        assert!(line.contains("\"proto\":\"macs-1\""));
        assert!(Frame::decode(&line.replace("macs-1", "macs-2")).is_err());
    }
}
