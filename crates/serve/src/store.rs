//! The shared artifact store: content-addressed job results under
//! `results/`.
//!
//! The store deliberately reuses the engine's cache layout and formats,
//! so server jobs and plain `mac-bench` runs feed each other:
//!
//! * sim jobs → `<root>/cache/sim-<fp>.mrc` (the engine's result cache,
//!   `cachefmt` MACS format) — a sim the CLI already ran is a warm hit
//!   for the server, and vice versa;
//! * entry jobs → `<root>/cache/exp-<fp>.art` (the engine's artifact
//!   cache);
//! * checked sim jobs → `<root>/serve/job-<fp>.chk`, a versioned
//!   envelope (`# mac-serve checked result v1`) holding the conformance
//!   verdict plus the embedded `.mrc` payload.
//!
//! All writes go through the engine's `atomic_write` (temp file +
//! rename), so concurrent pools and servers sharing one `results/` tree
//! never expose torn files to each other.

use std::path::{Path, PathBuf};

use mac_sim::cachefmt;
use mac_sim::engine::{atomic_write, Artifact};
use mac_sim::report::RunReport;

use crate::job::{JobKind, JobSpec};

/// Version of the `.chk` checked-result envelope.
pub const CHECKED_FORMAT_VERSION: u32 = 1;

/// Header line of the `.chk` envelope.
const CHECKED_HEADER: &str = "# mac-serve checked result v1";

/// A content-addressed result store rooted at one `results/` tree.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// A store rooted at `root` (typically `results/`). Directories are
    /// created on first write.
    pub fn new(root: &Path) -> Self {
        ArtifactStore {
            root: root.to_path_buf(),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The engine-shared cache directory (`<root>/cache`).
    pub fn cache_dir(&self) -> PathBuf {
        self.root.join("cache")
    }

    /// Where a job's payload lives on disk.
    pub fn path_for(&self, spec: &JobSpec) -> PathBuf {
        let id = spec.job_id();
        match &spec.kind {
            JobKind::Entry { .. } => self.cache_dir().join(format!("exp-{id}.art")),
            JobKind::Sim { .. } if spec.checked => {
                self.root.join("serve").join(format!("job-{id}.chk"))
            }
            JobKind::Sim { .. } => self.cache_dir().join(format!("sim-{id}.mrc")),
        }
    }

    /// Load a job's payload, validating that it decodes in its format.
    /// A file that exists but fails validation is treated as absent (it
    /// will be regenerated and atomically replaced).
    pub fn load(&self, spec: &JobSpec) -> Option<String> {
        let text = std::fs::read_to_string(self.path_for(spec)).ok()?;
        let valid = match &spec.kind {
            JobKind::Entry { .. } => cachefmt::decode_artifacts(&text).is_some(),
            JobKind::Sim { .. } if spec.checked => decode_checked(&text).is_some(),
            JobKind::Sim { .. } => cachefmt::decode_run(&text).is_some(),
        };
        valid.then_some(text)
    }

    /// Store a sim job's report (normalized like the engine's cache:
    /// trace summary cleared).
    pub fn store_sim(&self, spec: &JobSpec, report: &RunReport) -> std::io::Result<String> {
        let mut stored = report.clone();
        stored.trace = Default::default();
        let text = cachefmt::encode_run(&stored);
        atomic_write(&self.path_for(spec), &text)?;
        Ok(text)
    }

    /// Store an entry job's rendered artifacts.
    pub fn store_entry(&self, spec: &JobSpec, arts: &[Artifact]) -> std::io::Result<String> {
        let text = cachefmt::encode_artifacts(arts);
        atomic_write(&self.path_for(spec), &text)?;
        Ok(text)
    }

    /// Store a checked sim job's verdict + report envelope.
    pub fn store_checked(
        &self,
        spec: &JobSpec,
        violations: &[String],
        divergences: &[String],
        report: &RunReport,
    ) -> std::io::Result<String> {
        let text = encode_checked(violations, divergences, report);
        atomic_write(&self.path_for(spec), &text)?;
        Ok(text)
    }
}

/// Render the `.chk` envelope: verdict lines, a `---` separator, then
/// the embedded `.mrc` payload.
pub fn encode_checked(violations: &[String], divergences: &[String], report: &RunReport) -> String {
    let mut out = format!("{CHECKED_HEADER}\n");
    out.push_str(&format!("violations {}\n", violations.len()));
    out.push_str(&format!("divergences {}\n", divergences.len()));
    for v in violations {
        out.push_str(&format!("v {}\n", v.replace('\n', " ")));
    }
    for d in divergences {
        out.push_str(&format!("d {}\n", d.replace('\n', " ")));
    }
    out.push_str("---\n");
    let mut stored = report.clone();
    stored.trace = Default::default();
    out.push_str(&cachefmt::encode_run(&stored));
    out
}

/// Parse a `.chk` envelope into `(violations, divergences, report)`.
pub fn decode_checked(text: &str) -> Option<(Vec<String>, Vec<String>, RunReport)> {
    let mut lines = text.lines();
    if lines.next()? != CHECKED_HEADER {
        return None;
    }
    let nv: usize = lines.next()?.strip_prefix("violations ")?.parse().ok()?;
    let nd: usize = lines.next()?.strip_prefix("divergences ")?.parse().ok()?;
    let mut violations = Vec::with_capacity(nv);
    let mut divergences = Vec::with_capacity(nd);
    for line in lines.by_ref() {
        if line == "---" {
            break;
        } else if let Some(v) = line.strip_prefix("v ") {
            violations.push(v.to_string());
        } else if let Some(d) = line.strip_prefix("d ") {
            divergences.push(d.to_string());
        } else {
            return None;
        }
    }
    if violations.len() != nv || divergences.len() != nd {
        return None;
    }
    let rest: String = lines.map(|l| format!("{l}\n")).collect();
    let report = cachefmt::decode_run(&rest)?;
    Some((violations, divergences, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::experiment::ExperimentConfig;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mac-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sim_payloads_round_trip_through_the_store() {
        let root = tmp_root("sim");
        let store = ArtifactStore::new(&root);
        let spec = JobSpec::sim("sg", ExperimentConfig::paper(2));
        assert!(store.load(&spec).is_none(), "cold store");
        let report = RunReport {
            cycles: 1234,
            ..RunReport::default()
        };
        let text = store.store_sim(&spec, &report).expect("stores");
        assert_eq!(store.load(&spec).as_deref(), Some(text.as_str()));
        // The path is the engine's cache layout: a CLI run would hit it.
        assert!(store
            .path_for(&spec)
            .to_string_lossy()
            .contains("cache/sim-"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_read_as_absent() {
        let root = tmp_root("corrupt");
        let store = ArtifactStore::new(&root);
        let spec = JobSpec::sim("sg", ExperimentConfig::paper(2));
        let path = store.path_for(&spec);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "not a cache file").unwrap();
        assert!(store.load(&spec).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checked_envelope_round_trips() {
        let report = RunReport {
            cycles: 77,
            ..RunReport::default()
        };
        let v = vec!["I3 @ cycle 9: echo mismatch".to_string()];
        let d = vec!["thread 0: loads 5 != 6".to_string()];
        let text = encode_checked(&v, &d, &report);
        let (rv, rd, rr) = decode_checked(&text).expect("decodes");
        assert_eq!(rv, v);
        assert_eq!(rd, d);
        assert_eq!(rr.cycles, 77);
        assert!(decode_checked("garbage").is_none());
        assert!(decode_checked(&text.replace("violations 1", "violations 2")).is_none());
    }
}
