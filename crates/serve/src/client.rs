//! A blocking MACS-1 client over one TCP connection.
//!
//! Thin by design: each method sends one request line and decodes one
//! response line (plus the raw payload lines a `payload` header
//! announces). Retry/backoff policy is the caller's job — a shed
//! submission comes back as [`Response::Rejected`] with its suggested
//! `retry_after_ms`, not as an error.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mac_types::JobId;

use crate::job::{JobSpec, JobState};
use crate::proto::{Frame, Request, Response, PROTO_VERSION};

/// A connected client speaking MACS-1 to one server.
pub struct ServeClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    client_name: String,
}

impl ServeClient {
    /// Connect and handshake. Fails if the server speaks a different
    /// protocol version.
    pub fn connect(addr: &str, client_name: &str) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut c = ServeClient {
            writer,
            reader: BufReader::new(stream),
            client_name: client_name.to_string(),
        };
        match c.roundtrip(&Request::Hello {
            client: client_name.to_string(),
        })? {
            Response::Hello { version } if version == PROTO_VERSION => Ok(c),
            Response::Hello { version } => Err(protocol_error(format!(
                "server speaks macs v{version}, this client speaks v{PROTO_VERSION}"
            ))),
            other => Err(protocol_error(format!("bad handshake answer: {other:?}"))),
        }
    }

    /// Set the read timeout for subsequent responses.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.writer.write_all(req.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(line.trim_end()).map_err(protocol_error)
    }

    /// One request, one response line.
    pub fn roundtrip(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    fn recv_payload(&mut self, lines: u64) -> std::io::Result<String> {
        let mut body = String::new();
        let mut line = String::new();
        for _ in 0..lines {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "payload truncated",
                ));
            }
            body.push_str(&line);
        }
        Ok(body)
    }

    /// Submit a job. Returns the full admission answer (`Accepted` with
    /// dedup/cached flags, or `Rejected` with a retry delay).
    pub fn submit(&mut self, spec: &JobSpec) -> std::io::Result<Response> {
        self.roundtrip(&Request::Submit {
            client: self.client_name.clone(),
            spec: spec.clone(),
        })
    }

    /// Ask for a job's current state.
    pub fn poll(&mut self, job: JobId) -> std::io::Result<JobState> {
        match self.roundtrip(&Request::Poll { job })? {
            Response::Status { state, .. } => Ok(state),
            Response::Error { msg } => Err(protocol_error(msg)),
            other => Err(protocol_error(format!("bad poll answer: {other:?}"))),
        }
    }

    /// Wait (server-side) up to `timeout_ms` for the job to finish, then
    /// return its state — which may still be non-terminal on timeout.
    pub fn wait(&mut self, job: JobId, timeout_ms: u64) -> std::io::Result<JobState> {
        match self.roundtrip(&Request::Wait { job, timeout_ms })? {
            Response::Status { state, .. } => Ok(state),
            Response::Error { msg } => Err(protocol_error(msg)),
            other => Err(protocol_error(format!("bad wait answer: {other:?}"))),
        }
    }

    /// Wait for `job` to reach a terminal state, for up to `timeout_ms`
    /// total, without busy-polling: each round trip parks server-side
    /// for a bounded chunk, and between chunks the client sleeps for
    /// the server's suggested backoff (`hint_ms`, e.g. from a shed
    /// answer or the `serve/retry_after_ms` stats gauge), falling back
    /// to a capped exponential backoff when no hint is known. Returns
    /// the final observed state (possibly non-terminal on timeout) and
    /// the number of wait round trips made.
    pub fn wait_backoff(
        &mut self,
        job: JobId,
        timeout_ms: u64,
        hint_ms: Option<u64>,
    ) -> std::io::Result<(JobState, u64)> {
        // Chunked so one slow job cannot pin a server handler for the
        // full client-side timeout (the server caps a single wait at
        // 60 s anyway).
        const CHUNK_MS: u64 = 2_000;
        const BACKOFF_CAP_MS: u64 = 1_000;
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        let mut backoff = hint_ms.unwrap_or(25).clamp(1, BACKOFF_CAP_MS);
        let mut round_trips = 0u64;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            let chunk = (left.as_millis() as u64).min(CHUNK_MS);
            round_trips += 1;
            let state = self.wait(job, chunk)?;
            if state.is_terminal() || left.as_millis() == 0 {
                return Ok((state, round_trips));
            }
            let sleep = backoff.min(
                deadline
                    .saturating_duration_since(Instant::now())
                    .as_millis() as u64,
            );
            if sleep > 0 {
                std::thread::sleep(Duration::from_millis(sleep));
            }
            if hint_ms.is_none() {
                backoff = (backoff * 2).min(BACKOFF_CAP_MS);
            }
        }
    }

    /// Subscribe to a job's live stream (`watch`). Calls `on_frame` for
    /// every frame the server sends until the terminal [`Frame::End`]
    /// arrives, then returns its state. Sample frames pass their raw
    /// CSV chunk as the second argument; concatenating the chunks of a
    /// complete stream reproduces the job's metrics artifact
    /// byte-for-byte.
    pub fn watch<F>(&mut self, job: JobId, mut on_frame: F) -> std::io::Result<JobState>
    where
        F: FnMut(&Frame, Option<&str>),
    {
        self.send(&Request::Watch { job })?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "watch stream truncated",
                ));
            }
            let trimmed = line.trim_end();
            let frame = match Frame::decode(trimmed) {
                Ok(f) => f,
                Err(_) => match Response::decode(trimmed) {
                    Ok(Response::Error { msg }) => return Err(protocol_error(msg)),
                    _ => return Err(protocol_error(format!("bad watch frame: {trimmed}"))),
                },
            };
            match &frame {
                Frame::Sample { lines, .. } => {
                    let body = self.recv_payload(*lines)?;
                    on_frame(&frame, Some(&body));
                }
                Frame::Progress { .. } => on_frame(&frame, None),
                Frame::End { state, .. } => {
                    let state = state.clone();
                    on_frame(&frame, None);
                    return Ok(state);
                }
            }
        }
    }

    /// Fetch a completed job's artifact payload.
    pub fn fetch(&mut self, job: JobId) -> std::io::Result<String> {
        match self.roundtrip(&Request::Fetch { job })? {
            Response::Payload { lines, .. } => self.recv_payload(lines),
            Response::Error { msg } => Err(protocol_error(msg)),
            other => Err(protocol_error(format!("bad fetch answer: {other:?}"))),
        }
    }

    /// Fetch the server counters as a mac-metrics v1 CSV.
    pub fn stats(&mut self) -> std::io::Result<String> {
        match self.roundtrip(&Request::Stats)? {
            Response::Payload { lines, .. } => self.recv_payload(lines),
            other => Err(protocol_error(format!("bad stats answer: {other:?}"))),
        }
    }

    /// Pause job dispatch (queued jobs stay queued).
    pub fn pause(&mut self) -> std::io::Result<()> {
        self.expect_ack(&Request::Pause)
    }

    /// Resume job dispatch after a pause.
    pub fn resume(&mut self) -> std::io::Result<()> {
        self.expect_ack(&Request::Resume)
    }

    /// Ask the server to drain its queue and exit.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.expect_ack(&Request::Shutdown)
    }

    fn expect_ack(&mut self, req: &Request) -> std::io::Result<()> {
        match self.roundtrip(req)? {
            Response::Ack { .. } => Ok(()),
            other => Err(protocol_error(format!("expected ack, got {other:?}"))),
        }
    }
}

fn protocol_error(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}
