//! The job server: a std-only threaded TCP server over the engine.
//!
//! # Anatomy
//!
//! * One **listener thread** accepts connections; each connection gets a
//!   detached handler thread speaking MACS-1 (requests are independent,
//!   so per-connection state is just the client name from `hello`).
//! * `workers` **job workers** pop admitted jobs from the bounded queue
//!   and execute them. Each job runs on its own [`SimPool`] pointed at
//!   the shared cache directory, so warm results flow between jobs,
//!   server restarts, and plain `mac-bench` runs, while per-job failure
//!   attribution (cycle-cap timeouts) stays exact.
//! * The **admission supervisor** ([`Admission`]) gates every submit;
//!   shed answers carry an explicit retry-after. Dedup happens before
//!   admission: a submission matching a queued/running job joins it and
//!   consumes no queue slot, and one whose artifact is already stored
//!   completes instantly.
//! * **Graceful shutdown** drains: new submissions are rejected with
//!   `reason="draining"`, queued jobs finish, workers exit, and
//!   [`ServerHandle::wait`] then writes the server counters as a
//!   mac-metrics v1 CSV under `<out>/serve/server-metrics.csv`.
//!
//! Determinism note: simulation *results* are deterministic (engine
//! guarantee); scheduling order across concurrent clients is not, but
//! every observable artifact is content-addressed, so any interleaving
//! converges to the same store contents.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mac_metrics::{MetricsHub, MetricsSnapshot, SeriesData, SeriesKind};
use mac_sim::engine::{atomic_write, ExpCtx, SimPool, SimRequest, DEFAULT_METRICS_INTERVAL};
use mac_sim::experiment::run_workload_checked;
use mac_sim::manifest;
use mac_sim::{phase_name, ProgressProbe, PHASE_DONE, PHASE_QUEUED, PHASE_RUNNING};
use mac_telemetry::Profiler;
use mac_types::JobId;
use mac_workloads::by_name;

use crate::admission::{Admission, AdmissionConfig, Decision, Observation};
use crate::job::{JobKind, JobSpec, JobState};
use crate::proto::{Frame, Request, Response, PROTO_VERSION};
use crate::store::ArtifactStore;

/// Configuration for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4650` (port 0 picks a free one).
    pub addr: String,
    /// Job worker threads (jobs executing concurrently). 0 = one per
    /// available core, capped at 4.
    pub workers: usize,
    /// Simulation threads inside each job's pool (for entry jobs that
    /// fan out). 0 = one per available core.
    pub sim_jobs: usize,
    /// Root of the shared artifact store (default `results`).
    pub out_dir: PathBuf,
    /// Admission tunables.
    pub admission: AdmissionConfig,
    /// Start with dispatch paused (jobs queue but do not run until a
    /// `resume`); used by flow-control tests and maintenance windows.
    pub start_paused: bool,
    /// Metrics sampling interval (simulated cycles) for the per-job
    /// hubs `watch` subscribers stream from.
    pub metrics_interval: u64,
    /// Re-export the server counters CSV after every N completed jobs
    /// (0 = only at shutdown), so a crash or kill loses at most N jobs
    /// of counter history.
    pub flush_every: u64,
    /// How often (milliseconds) a `watch` handler polls the watched
    /// job's live state between stream frames.
    pub watch_poll_ms: u64,
    /// Record host-side wall-clock spans for the job lifecycle and the
    /// shared pool, exporting `serve/profile.txt`/`.json` at shutdown.
    pub profile: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4650".into(),
            workers: 0,
            sim_jobs: 0,
            out_dir: PathBuf::from("results"),
            admission: AdmissionConfig::default(),
            start_paused: false,
            metrics_interval: DEFAULT_METRICS_INTERVAL,
            flush_every: 8,
            watch_poll_ms: 100,
            profile: false,
        }
    }
}

/// Monotonic server-level counters, exported in mac-metrics v1 form.
#[derive(Debug, Default)]
struct Counters {
    jobs_submitted: AtomicU64,
    jobs_accepted: AtomicU64,
    jobs_deduped: AtomicU64,
    jobs_cached: AtomicU64,
    jobs_rejected_queue_full: AtomicU64,
    jobs_rejected_client_limit: AtomicU64,
    jobs_rejected_overload: AtomicU64,
    jobs_rejected_draining: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    sims_executed: AtomicU64,
    sims_from_disk: AtomicU64,
    sims_from_memo: AtomicU64,
    queue_peak: AtomicU64,
}

impl Counters {
    fn rejected_total(&self) -> u64 {
        self.jobs_rejected_queue_full.load(Ordering::Relaxed)
            + self.jobs_rejected_client_limit.load(Ordering::Relaxed)
            + self.jobs_rejected_overload.load(Ordering::Relaxed)
            + self.jobs_rejected_draining.load(Ordering::Relaxed)
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
struct JobEntry {
    spec: JobSpec,
    client: String,
    state: JobState,
}

/// The live side-channel of one executing simulation job: the metrics
/// hub its run loop samples into and the progress probe it updates
/// every tick. `watch` handlers clone this and poll at their own pace.
#[derive(Clone)]
struct LiveJob {
    hub: MetricsHub,
    probe: Arc<ProgressProbe>,
}

/// Mutex-guarded server state.
struct State {
    jobs: HashMap<u128, JobEntry>,
    queue: VecDeque<u128>,
    running: usize,
    inflight: HashMap<String, usize>,
    admission: Admission,
    paused: bool,
    draining: bool,
    /// Live observers of currently-executing sim jobs, keyed like
    /// `jobs`. Entries appear when execution starts and are removed in
    /// the same critical section that records the terminal state.
    live: HashMap<u128, LiveJob>,
}

struct Inner {
    cfg: ServerConfig,
    store: ArtifactStore,
    state: Mutex<State>,
    /// Wakes workers when the queue or the paused/draining flags change.
    work_cv: Condvar,
    /// Wakes `wait` handlers when any job reaches a terminal state.
    done_cv: Condvar,
    counters: Counters,
    addr: SocketAddr,
    /// Host-side span profiler (disabled unless [`ServerConfig::profile`]).
    profiler: Profiler,
}

/// A running server: its bound address plus the thread handles
/// [`ServerHandle::wait`] joins.
pub struct ServerHandle {
    inner: Arc<Inner>,
    listener: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Block until the server has drained and exited (a client must send
    /// `shutdown`), then export the counters CSV (and, when profiling,
    /// the span profile) and return the CSV.
    pub fn wait(self) -> std::io::Result<String> {
        let _ = self.listener.join();
        for w in self.workers {
            let _ = w.join();
        }
        let csv = self.inner.stats_csv();
        let path = self.inner.metrics_path();
        atomic_write(&path, &csv)?;
        let serve_dir = self.inner.cfg.out_dir.join("serve");
        if let Some(text) = self.inner.profiler.export_text() {
            atomic_write(&serve_dir.join("profile.txt"), &text)?;
        }
        if let Some(json) = self.inner.profiler.export_json() {
            atomic_write(&serve_dir.join("profile.json"), &json)?;
        }
        Ok(csv)
    }
}

/// Start a server. Returns once the listener is bound; jobs are served
/// on background threads until a client requests shutdown.
pub fn serve(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let store = ArtifactStore::new(&cfg.out_dir);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2)
    } else {
        cfg.workers
    };
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            running: 0,
            inflight: HashMap::new(),
            admission: Admission::new(cfg.admission.clone()),
            paused: cfg.start_paused,
            draining: false,
            live: HashMap::new(),
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        counters: Counters::default(),
        addr,
        profiler: if cfg.profile {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        },
        store,
        cfg,
    });

    let worker_handles: Vec<_> = (0..workers)
        .map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        })
        .collect();
    let listener_inner = Arc::clone(&inner);
    let listener_handle = std::thread::spawn(move || listen_loop(listener, &listener_inner));

    Ok(ServerHandle {
        inner,
        listener: listener_handle,
        workers: worker_handles,
    })
}

fn listen_loop(listener: TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.state.lock().expect("state poisoned").draining {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        // Connection handlers are detached: they hold no lock across
        // blocking reads and die with their socket.
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &inner);
        });
    }
}

fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut client = String::from("anonymous");
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        let (response, payload) = match Request::decode(trimmed) {
            Err(e) => (Response::Error { msg: e }, None),
            Ok(Request::Hello { client: name }) => {
                if !name.is_empty() {
                    client = name;
                }
                (
                    Response::Hello {
                        version: PROTO_VERSION,
                    },
                    None,
                )
            }
            Ok(Request::Submit { client: name, spec }) => {
                if name != "anonymous" && !name.is_empty() {
                    client = name;
                }
                (inner.handle_submit(&client, spec), None)
            }
            Ok(Request::Poll { job }) => (inner.status_of(job), None),
            Ok(Request::Wait { job, timeout_ms }) => (inner.wait_for(job, timeout_ms), None),
            Ok(Request::Fetch { job }) => inner.handle_fetch(job),
            Ok(Request::Watch { job }) => {
                inner.handle_watch(job, &mut writer)?;
                continue;
            }
            Ok(Request::Stats) => {
                let csv = inner.stats_csv();
                let lines = csv.lines().count() as u64;
                (
                    Response::Payload {
                        what: "stats".into(),
                        lines,
                    },
                    Some(csv),
                )
            }
            Ok(Request::Pause) => {
                inner.set_paused(true);
                (
                    Response::Ack {
                        what: "pause".into(),
                    },
                    None,
                )
            }
            Ok(Request::Resume) => {
                inner.set_paused(false);
                (
                    Response::Ack {
                        what: "resume".into(),
                    },
                    None,
                )
            }
            Ok(Request::Shutdown) => {
                // Ack BEFORE starting the drain: once draining begins the
                // whole process may exit (taking this detached handler
                // with it) before a post-drain write would land.
                let ack = Response::Ack {
                    what: "shutdown".into(),
                };
                writer.write_all(ack.encode().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                inner.begin_drain();
                continue;
            }
        };
        writer.write_all(response.encode().as_bytes())?;
        writer.write_all(b"\n")?;
        if let Some(body) = payload {
            writer.write_all(body.as_bytes())?;
            if !body.ends_with('\n') {
                writer.write_all(b"\n")?;
            }
        }
        writer.flush()?;
    }
}

impl Inner {
    fn metrics_path(&self) -> PathBuf {
        self.cfg.out_dir.join("serve").join("server-metrics.csv")
    }

    /// Where one job's interval-metrics artifact lands (the same bytes a
    /// complete `watch` stream delivers).
    fn job_metrics_path(&self, job: JobId) -> PathBuf {
        self.cfg
            .out_dir
            .join("serve")
            .join(format!("job-{job}.metrics.csv"))
    }

    fn handle_submit(&self, client: &str, spec: JobSpec) -> Response {
        self.counters.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        let job = spec.job_id();
        let fp = job.as_u128();
        let mut st = self.state.lock().expect("state poisoned");

        // In-flight dedup and replay of finished jobs come first: they
        // consume no queue slot, so they are never shed.
        if let Some(entry) = st.jobs.get(&fp) {
            match &entry.state {
                JobState::Queued | JobState::Running => {
                    self.counters.jobs_deduped.fetch_add(1, Ordering::Relaxed);
                    return Response::Accepted {
                        job,
                        state: entry.state.clone(),
                        dedup: true,
                        cached: false,
                        queue_pos: st.queue.iter().position(|f| *f == fp).map(|p| p as u64),
                    };
                }
                JobState::Done => {
                    self.counters.jobs_cached.fetch_add(1, Ordering::Relaxed);
                    return Response::Accepted {
                        job,
                        state: JobState::Done,
                        dedup: false,
                        cached: true,
                        queue_pos: None,
                    };
                }
                // A failed job may be resubmitted: fall through to
                // ordinary admission and requeue it.
                JobState::Failed { .. } => {}
            }
        }

        // Warm hit in the shared store: complete instantly, zero sims.
        // Checked jobs always execute — the verdict is the product.
        if !spec.checked && self.store.load(&spec).is_some() {
            self.counters.jobs_cached.fetch_add(1, Ordering::Relaxed);
            st.jobs.insert(
                fp,
                JobEntry {
                    spec,
                    client: client.to_string(),
                    state: JobState::Done,
                },
            );
            return Response::Accepted {
                job,
                state: JobState::Done,
                dedup: false,
                cached: true,
                queue_pos: None,
            };
        }

        if st.draining {
            self.counters
                .jobs_rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            return Response::Rejected {
                reason: "draining".into(),
                retry_after_ms: 1000,
            };
        }

        let obs = Observation {
            queue_depth: st.queue.len(),
            running: st.running,
            client_inflight: st.inflight.get(client).copied().unwrap_or(0),
        };
        match st.admission.decide(&obs) {
            Decision::Shed {
                reason,
                retry_after_ms,
            } => {
                let c = match reason {
                    "queue-full" => &self.counters.jobs_rejected_queue_full,
                    "client-limit" => &self.counters.jobs_rejected_client_limit,
                    _ => &self.counters.jobs_rejected_overload,
                };
                c.fetch_add(1, Ordering::Relaxed);
                Response::Rejected {
                    reason: reason.into(),
                    retry_after_ms,
                }
            }
            Decision::Accept => {
                self.counters.jobs_accepted.fetch_add(1, Ordering::Relaxed);
                st.jobs.insert(
                    fp,
                    JobEntry {
                        spec,
                        client: client.to_string(),
                        state: JobState::Queued,
                    },
                );
                st.queue.push_back(fp);
                *st.inflight.entry(client.to_string()).or_insert(0) += 1;
                let depth = st.queue.len() as u64;
                self.counters.queue_peak.fetch_max(depth, Ordering::Relaxed);
                let queue_pos = Some(depth - 1);
                drop(st);
                self.work_cv.notify_one();
                Response::Accepted {
                    job,
                    state: JobState::Queued,
                    dedup: false,
                    cached: false,
                    queue_pos,
                }
            }
        }
    }

    fn status_of(&self, job: JobId) -> Response {
        let st = self.state.lock().expect("state poisoned");
        match st.jobs.get(&job.as_u128()) {
            Some(entry) => Response::Status {
                job,
                state: entry.state.clone(),
            },
            None => Response::Error {
                msg: format!("no such job {job}"),
            },
        }
    }

    fn wait_for(&self, job: JobId, timeout_ms: u64) -> Response {
        let deadline = Instant::now() + Duration::from_millis(timeout_ms.min(60_000));
        let mut st = self.state.lock().expect("state poisoned");
        loop {
            match st.jobs.get(&job.as_u128()) {
                None => {
                    return Response::Error {
                        msg: format!("no such job {job}"),
                    }
                }
                Some(entry) if entry.state.is_terminal() => {
                    return Response::Status {
                        job,
                        state: entry.state.clone(),
                    }
                }
                Some(entry) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Response::Status {
                            job,
                            state: entry.state.clone(),
                        };
                    }
                    let (guard, _) = self
                        .done_cv
                        .wait_timeout(st, deadline - now)
                        .expect("state poisoned");
                    st = guard;
                }
            }
        }
    }

    fn handle_fetch(&self, job: JobId) -> (Response, Option<String>) {
        let spec = {
            let st = self.state.lock().expect("state poisoned");
            match st.jobs.get(&job.as_u128()) {
                None => {
                    return (
                        Response::Error {
                            msg: format!("no such job {job}"),
                        },
                        None,
                    )
                }
                Some(entry) if !matches!(entry.state, JobState::Done) => {
                    return (
                        Response::Error {
                            msg: format!("job {job} is {}", entry.state.as_str()),
                        },
                        None,
                    )
                }
                Some(entry) => entry.spec.clone(),
            }
        };
        match self.store.load(&spec) {
            Some(text) => {
                let lines = text.lines().count() as u64;
                (
                    Response::Payload {
                        what: "result".into(),
                        lines,
                    },
                    Some(text),
                )
            }
            None => (
                Response::Error {
                    msg: format!("artifact for {job} missing from store"),
                },
                None,
            ),
        }
    }

    /// Stream a `watch` subscription: a progress frame every poll tick,
    /// incremental metrics-sample chunks as the live hub fills, and one
    /// terminal `end` frame. Sample chunks are cycle-major CSV rows in
    /// final order — rows at or below the last sampled cycle never
    /// change — so the concatenation of every chunk in one complete
    /// stream is byte-identical to the job's on-disk metrics artifact.
    fn handle_watch(&self, job: JobId, writer: &mut TcpStream) -> std::io::Result<()> {
        let _span = self.profiler.span("serve/watch");
        let fp = job.as_u128();
        let poll = Duration::from_millis(self.cfg.watch_poll_ms.max(1));
        let mut live: Option<LiveJob> = None;
        let mut cursor: Option<u64> = None;
        let mut sent_header = false;
        let send = |writer: &mut TcpStream, line: String, body: Option<&str>| {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            if let Some(b) = body {
                writer.write_all(b.as_bytes())?;
            }
            writer.flush()
        };
        loop {
            let (state, fresh) = {
                let st = self.state.lock().expect("state poisoned");
                match st.jobs.get(&fp) {
                    None => {
                        let err = Response::Error {
                            msg: format!("no such job {job}"),
                        };
                        return send(writer, err.encode(), None);
                    }
                    Some(e) => (e.state.clone(), st.live.get(&fp).cloned()),
                }
            };
            if live.is_none() {
                live = fresh;
            }
            let terminal = state.is_terminal();
            // New metrics rows first, so the final chunk precedes `end`.
            if let Some(l) = &live {
                if let Some(snap) = l.hub.snapshot() {
                    let rows = snap.csv_rows_after(cursor);
                    let mut chunk = String::new();
                    if !sent_header && (terminal || !rows.is_empty()) {
                        chunk.push_str(&snap.csv_header());
                        sent_header = true;
                    }
                    for r in &rows {
                        chunk.push_str(r);
                        chunk.push('\n');
                    }
                    if let Some(c) = snap.last_cycle() {
                        cursor = Some(c);
                    }
                    if !chunk.is_empty() {
                        let frame = Frame::Sample {
                            job,
                            lines: chunk.lines().count() as u64,
                        };
                        send(writer, frame.encode(), Some(&chunk))?;
                    }
                }
            } else if terminal {
                // Late subscriber: the run (if any) is long gone. Replay
                // the stored metrics artifact as one chunk.
                if let Ok(text) = std::fs::read_to_string(self.job_metrics_path(job)) {
                    let frame = Frame::Sample {
                        job,
                        lines: text.lines().count() as u64,
                    };
                    send(writer, frame.encode(), Some(&text))?;
                }
            }
            let (cycles, retired, phase) = match &live {
                Some(l) => l.probe.read(),
                None if terminal => (0, 0, PHASE_DONE),
                None if matches!(state, JobState::Running) => (0, 0, PHASE_RUNNING),
                None => (0, 0, PHASE_QUEUED),
            };
            let progress = Frame::Progress {
                job,
                cycles,
                retired,
                phase: phase_name(phase).into(),
            };
            send(writer, progress.encode(), None)?;
            if terminal {
                let end = Frame::End { job, state };
                return send(writer, end.encode(), None);
            }
            std::thread::sleep(poll);
        }
    }

    fn set_paused(&self, paused: bool) {
        let mut st = self.state.lock().expect("state poisoned");
        st.paused = paused;
        drop(st);
        self.work_cv.notify_all();
    }

    fn begin_drain(&self) {
        let mut st = self.state.lock().expect("state poisoned");
        st.draining = true;
        st.paused = false; // drain overrides pause: queued work must finish
        drop(st);
        self.work_cv.notify_all();
        // Unblock the listener's accept() so it can observe `draining`.
        let _ = TcpStream::connect(self.addr);
    }

    /// The server counters as one mac-metrics v1 snapshot. The sample
    /// "cycle" axis is the total number of submissions seen, so
    /// successive exports from a live server form a monotone series.
    fn stats_csv(&self) -> String {
        let c = &self.counters;
        let at = c.jobs_submitted.load(Ordering::Relaxed);
        let st = self.state.lock().expect("state poisoned");
        let queue_depth = st.queue.len() as u64;
        let running = st.running as u64;
        let evidence = st.admission.evidence() as u64;
        let retry_hint = st.admission.retry_hint_ms(st.queue.len());
        drop(st);
        let series = |name: &str, kind: SeriesKind, v: u64| SeriesData {
            name: format!("serve/{name}"),
            kind,
            points: vec![(at, v)],
        };
        let ctr = |name: &str, v: &AtomicU64| {
            series(name, SeriesKind::Counter, v.load(Ordering::Relaxed))
        };
        let snap = MetricsSnapshot {
            interval: 1,
            series: vec![
                series("admission_evidence", SeriesKind::Gauge, evidence),
                ctr("jobs_accepted", &c.jobs_accepted),
                ctr("jobs_cached", &c.jobs_cached),
                ctr("jobs_completed", &c.jobs_completed),
                ctr("jobs_deduped", &c.jobs_deduped),
                ctr("jobs_failed", &c.jobs_failed),
                series("jobs_rejected", SeriesKind::Counter, c.rejected_total()),
                ctr("jobs_rejected_client_limit", &c.jobs_rejected_client_limit),
                ctr("jobs_rejected_draining", &c.jobs_rejected_draining),
                ctr("jobs_rejected_overload", &c.jobs_rejected_overload),
                ctr("jobs_rejected_queue_full", &c.jobs_rejected_queue_full),
                ctr("jobs_submitted", &c.jobs_submitted),
                series("queue_depth", SeriesKind::Gauge, queue_depth),
                ctr("queue_peak", &c.queue_peak),
                series("retry_after_ms", SeriesKind::Gauge, retry_hint),
                series("running", SeriesKind::Gauge, running),
                ctr("sims_executed", &c.sims_executed),
                ctr("sims_from_disk", &c.sims_from_disk),
                ctr("sims_from_memo", &c.sims_from_memo),
            ],
        };
        snap.to_csv()
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (fp, spec) = {
            let mut st = inner.state.lock().expect("state poisoned");
            loop {
                if !st.paused {
                    if let Some(fp) = st.queue.pop_front() {
                        st.running += 1;
                        let entry = st.jobs.get_mut(&fp).expect("queued job exists");
                        entry.state = JobState::Running;
                        let spec = entry.spec.clone();
                        break (fp, spec);
                    }
                    if st.draining {
                        return;
                    }
                }
                st = inner.work_cv.wait(st).expect("state poisoned");
            }
        };
        let outcome = execute_job(inner, &spec);
        let mut st = inner.state.lock().expect("state poisoned");
        st.running -= 1;
        // The live handle dies with the run, in the same critical
        // section that records the terminal state: watchers either
        // cloned it while the job ran or replay the on-disk artifact.
        st.live.remove(&fp);
        let entry = st.jobs.get_mut(&fp).expect("running job exists");
        entry.state = outcome;
        let client = entry.client.clone();
        let done = matches!(entry.state, JobState::Done);
        if let Some(n) = st.inflight.get_mut(&client) {
            *n = n.saturating_sub(1);
        }
        if done {
            inner
                .counters
                .jobs_completed
                .fetch_add(1, Ordering::Relaxed);
        } else {
            inner.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        // Completed work relieves pressure: let the supervisor see the
        // shorter queue so its evidence can drain.
        let depth = st.queue.len();
        st.admission.observe(depth);
        drop(st);
        inner.done_cv.notify_all();
        // More queued work may be runnable now that a slot freed up.
        inner.work_cv.notify_one();
        // Periodic counters flush: a crash loses at most `flush_every`
        // jobs of history instead of everything since startup.
        let n = inner.cfg.flush_every;
        if n > 0 {
            let finished = inner.counters.jobs_completed.load(Ordering::Relaxed)
                + inner.counters.jobs_failed.load(Ordering::Relaxed);
            if finished.is_multiple_of(n) {
                let _ = atomic_write(&inner.metrics_path(), &inner.stats_csv());
            }
        }
    }
}

/// Run one job to completion and return its terminal state. Results
/// land in the shared store before the state flips, so a `fetch` that
/// observes `done` always finds the artifact.
fn execute_job(inner: &Arc<Inner>, spec: &JobSpec) -> JobState {
    let _span = inner.profiler.span("serve/job");
    let pool = SimPool::new(inner.cfg.sim_jobs)
        .with_cache(&inner.store.cache_dir())
        .with_profiler(inner.profiler.clone());
    let result = match &spec.kind {
        JobKind::Sim { workload, cfg } if spec.checked => {
            let Some(w) = by_name(workload) else {
                return JobState::Failed {
                    reason: format!("unknown workload {workload}"),
                };
            };
            let run = run_workload_checked(w.as_ref(), cfg);
            let violations: Vec<String> = run.violations.iter().map(|v| v.to_string()).collect();
            let clean = run.violations.is_empty() && run.divergences.is_empty();
            let timed_out = run.report.cycles >= cfg.max_cycles;
            inner.counters.sims_executed.fetch_add(1, Ordering::Relaxed);
            match inner
                .store
                .store_checked(spec, &violations, &run.divergences, &run.report)
            {
                Ok(_) if timed_out => Err("hit the cycle cap before draining".to_string()),
                Ok(_) if !clean => Err(format!(
                    "conformance: {} violation(s), {} divergence(s)",
                    run.violations.len(),
                    run.divergences.len()
                )),
                Ok(_) => Ok(()),
                Err(e) => Err(format!("store write failed: {e}")),
            }
        }
        JobKind::Sim { workload, cfg } => {
            let req = SimRequest::new(workload, cfg);
            // Attach live observers so `watch` subscribers can stream
            // this job while it runs, then run through the pool's
            // cache-aware single-request path.
            let hub = MetricsHub::new(inner.cfg.metrics_interval);
            let probe = Arc::new(ProgressProbe::new());
            let fp = spec.job_id().as_u128();
            inner.state.lock().expect("state poisoned").live.insert(
                fp,
                LiveJob {
                    hub: hub.clone(),
                    probe: Arc::clone(&probe),
                },
            );
            let report = pool.run_one_observed(&req, hub.clone(), Some(probe));
            // Persist the job's metrics series before the state flips:
            // a watcher that observes `done` either already holds the
            // live hub or finds these exact bytes on disk.
            if let Some(snap) = hub.snapshot() {
                let _ = atomic_write(
                    &inner.job_metrics_path(spec.job_id()),
                    &snap.to_csv_cycle_major(),
                );
            }
            let timed_out = report.cycles >= cfg.max_cycles;
            // The pool has already cached the result; make sure the
            // store can serve it even if that best-effort write failed.
            let stored = match inner.store.load(spec) {
                Some(_) => Ok(()),
                None => inner.store.store_sim(spec, &report).map(|_| ()),
            };
            match stored {
                Ok(()) if timed_out => Err("hit the cycle cap before draining".to_string()),
                Ok(()) => Ok(()),
                Err(e) => Err(format!("store write failed: {e}")),
            }
        }
        JobKind::Entry { name, scale } => {
            let exps = manifest::manifest();
            let Some(exp) = exps.iter().find(|e| e.name == *name) else {
                return JobState::Failed {
                    reason: format!("unknown manifest entry {name}"),
                };
            };
            let ctx = ExpCtx {
                pool: &pool,
                scale: *scale,
            };
            let arts = mac_sim::catalog::execute(exp, &ctx);
            let timed_out = pool.sims_timed_out();
            match inner.store.store_entry(spec, &arts) {
                Ok(_) if timed_out > 0 => {
                    Err(format!("{timed_out} simulation(s) hit their cycle cap"))
                }
                Ok(_) => Ok(()),
                Err(e) => Err(format!("store write failed: {e}")),
            }
        }
    };
    let c = &inner.counters;
    c.sims_executed
        .fetch_add(pool.sims_executed(), Ordering::Relaxed);
    c.sims_from_disk
        .fetch_add(pool.disk_cache_hits(), Ordering::Relaxed);
    c.sims_from_memo
        .fetch_add(pool.memo_hits(), Ordering::Relaxed);
    match result {
        Ok(()) => JobState::Done,
        Err(reason) => JobState::Failed { reason },
    }
}
