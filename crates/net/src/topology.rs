//! Cube-network topologies and deterministic routing tables.
//!
//! The HMC protocol chains cubes over the same serial links a host
//! uses, with each cube's logic layer forwarding foreign packets
//! (HMC 2.1 §7). This module describes who is wired to whom and
//! precomputes, for every (source, destination) pair, the full hop
//! path — routing is table-driven and deterministic, so simulations
//! are reproducible and the result cache can key on the config alone.
//!
//! Three shapes are modeled, matching the configurations studied by
//! Hadidi et al. for NoC-connected stacks:
//!
//! * **daisy chain** — cubes in a line, host at cube 0;
//! * **ring** — the chain closed into a cycle; packets take the
//!   shorter arc, ties broken clockwise (toward higher cube ids);
//! * **2×2 mesh** — four cubes in a grid with dimension-order (X then
//!   Y) routing, the classic deadlock-free NoC scheme.

use mac_types::{NetConfig, NetTopology};
use serde::{Deserialize, Serialize};

/// A directed inter-cube connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Transmitting cube.
    pub from: u16,
    /// Receiving cube.
    pub to: u16,
}

/// A topology with its precomputed routing tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    cubes: usize,
    kind: NetTopology,
    /// All directed edges, in deterministic order.
    edges: Vec<Edge>,
    /// `next[from][to]` = next cube on the path from `from` to `to`
    /// (`from` itself when already there).
    next: Vec<Vec<u16>>,
}

impl Topology {
    /// Build the topology described by a network configuration.
    ///
    /// Panics when the shape and cube count disagree (`Mesh2x2` needs
    /// exactly 4 cubes; every shape needs at least 1).
    pub fn new(net: &NetConfig) -> Self {
        let n = net.cubes;
        assert!(n >= 1, "need at least one cube");
        assert!(
            net.topology != NetTopology::Mesh2x2 || n == 4,
            "Mesh2x2 requires exactly 4 cubes, got {n}"
        );
        let mut edges = Vec::new();
        match net.topology {
            NetTopology::DaisyChain => {
                for i in 0..n.saturating_sub(1) {
                    edges.push(Edge {
                        from: i as u16,
                        to: (i + 1) as u16,
                    });
                    edges.push(Edge {
                        from: (i + 1) as u16,
                        to: i as u16,
                    });
                }
            }
            NetTopology::Ring => {
                // A 1- or 2-cube "ring" degenerates to the chain (no
                // duplicate parallel edges).
                for i in 0..n {
                    let j = (i + 1) % n;
                    if i == j
                        || edges.contains(&Edge {
                            from: i as u16,
                            to: j as u16,
                        })
                    {
                        continue;
                    }
                    edges.push(Edge {
                        from: i as u16,
                        to: j as u16,
                    });
                    edges.push(Edge {
                        from: j as u16,
                        to: i as u16,
                    });
                }
            }
            NetTopology::Mesh2x2 => {
                // Cube i sits at (x, y) = (i & 1, i >> 1):
                //   2 — 3
                //   |   |
                //   0 — 1
                for (a, b) in [(0u16, 1u16), (2, 3), (0, 2), (1, 3)] {
                    edges.push(Edge { from: a, to: b });
                    edges.push(Edge { from: b, to: a });
                }
            }
        }

        let next = (0..n)
            .map(|from| {
                (0..n)
                    .map(|to| Self::next_hop_of(net.topology, n, from, to))
                    .collect()
            })
            .collect();

        Topology {
            cubes: n,
            kind: net.topology,
            edges,
            next,
        }
    }

    fn next_hop_of(kind: NetTopology, n: usize, from: usize, to: usize) -> u16 {
        if from == to {
            return from as u16;
        }
        let hop = match kind {
            NetTopology::DaisyChain => {
                if to > from {
                    from + 1
                } else {
                    from - 1
                }
            }
            NetTopology::Ring => {
                let fwd = (to + n - from) % n; // hops going clockwise
                let bwd = (from + n - to) % n;
                if fwd <= bwd {
                    (from + 1) % n // ties go clockwise
                } else {
                    (from + n - 1) % n
                }
            }
            NetTopology::Mesh2x2 => {
                // Dimension order: correct X (bit 0) first, then Y.
                if (from ^ to) & 1 != 0 {
                    from ^ 1
                } else {
                    from ^ 2
                }
            }
        };
        hop as u16
    }

    /// Number of cubes.
    pub fn cubes(&self) -> usize {
        self.cubes
    }

    /// The shape this topology was built from.
    pub fn kind(&self) -> NetTopology {
        self.kind
    }

    /// All directed edges in deterministic order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Index of a directed edge in [`Self::edges`].
    pub fn edge_index(&self, from: u16, to: u16) -> usize {
        self.edges
            .iter()
            .position(|e| e.from == from && e.to == to)
            .unwrap_or_else(|| panic!("no edge {from} -> {to}"))
    }

    /// Next cube on the path `from -> to` (`from` when equal).
    pub fn next_hop(&self, from: u16, to: u16) -> u16 {
        self.next[from as usize][to as usize]
    }

    /// Full cube sequence `from, ..., to` (both endpoints included).
    pub fn path(&self, from: u16, to: u16) -> Vec<u16> {
        let mut path = vec![from];
        let mut at = from;
        while at != to {
            let nxt = self.next_hop(at, to);
            assert_ne!(nxt, at, "routing loop at cube {at} toward {to}");
            path.push(nxt);
            at = nxt;
            assert!(
                path.len() <= self.cubes,
                "path longer than the cube count: {path:?}"
            );
        }
        path
    }

    /// Hop count (edges traversed) from `from` to `to`.
    pub fn hops(&self, from: u16, to: u16) -> usize {
        self.path(from, to).len() - 1
    }

    /// Worst-case hop count from cube 0 (the host attach point).
    pub fn diameter_from_host(&self) -> usize {
        (0..self.cubes as u16)
            .map(|c| self.hops(0, c))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(cubes: usize, topology: NetTopology) -> NetConfig {
        NetConfig {
            cubes,
            topology,
            ..NetConfig::default()
        }
    }

    #[test]
    fn chain_paths_are_linear() {
        let t = Topology::new(&net(4, NetTopology::DaisyChain));
        assert_eq!(t.path(0, 3), vec![0, 1, 2, 3]);
        assert_eq!(t.path(3, 0), vec![3, 2, 1, 0]);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.diameter_from_host(), 3);
        assert_eq!(t.edges().len(), 6);
    }

    #[test]
    fn ring_takes_the_shorter_arc() {
        let t = Topology::new(&net(8, NetTopology::Ring));
        assert_eq!(t.path(0, 2), vec![0, 1, 2]);
        assert_eq!(t.path(0, 6), vec![0, 7, 6]);
        // Equidistant: ties go clockwise.
        assert_eq!(t.path(0, 4), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.diameter_from_host(), 4);
        assert_eq!(t.edges().len(), 16);
    }

    #[test]
    fn small_rings_degenerate_to_chains() {
        let t1 = Topology::new(&net(1, NetTopology::Ring));
        assert!(t1.edges().is_empty());
        let t2 = Topology::new(&net(2, NetTopology::Ring));
        assert_eq!(t2.edges().len(), 2, "no duplicate parallel edges");
        assert_eq!(t2.path(0, 1), vec![0, 1]);
    }

    #[test]
    fn mesh_routes_dimension_order() {
        let t = Topology::new(&net(4, NetTopology::Mesh2x2));
        // 0 -> 3 corrects X first (0 -> 1), then Y (1 -> 3).
        assert_eq!(t.path(0, 3), vec![0, 1, 3]);
        assert_eq!(t.path(3, 0), vec![3, 2, 0]);
        assert_eq!(t.path(2, 1), vec![2, 3, 1]);
        assert_eq!(t.diameter_from_host(), 2);
        assert_eq!(t.edges().len(), 8);
    }

    #[test]
    #[should_panic(expected = "Mesh2x2 requires exactly 4")]
    fn mesh_rejects_wrong_cube_count() {
        Topology::new(&net(8, NetTopology::Mesh2x2));
    }

    #[test]
    fn every_pair_is_reachable_in_every_shape() {
        for (kind, n) in [
            (NetTopology::DaisyChain, 8),
            (NetTopology::Ring, 8),
            (NetTopology::Mesh2x2, 4),
        ] {
            let t = Topology::new(&net(n, kind));
            for a in 0..n as u16 {
                for b in 0..n as u16 {
                    let p = t.path(a, b);
                    assert_eq!(p.first(), Some(&a));
                    assert_eq!(p.last(), Some(&b));
                    // Every consecutive pair is a real edge.
                    for w in p.windows(2) {
                        assert!(t.edges().iter().any(|e| e.from == w[0] && e.to == w[1]));
                    }
                }
            }
        }
    }
}
