//! Network-level statistics: local/remote split, hop counts, transit
//! traffic.
//!
//! These are the observables the chain-sweep and placement experiments
//! report: how much traffic left the host-attached cube, how many hops
//! it paid, and what that did to its round-trip latency.

use mac_types::Counter;
use serde::{Deserialize, Serialize};

/// Aggregate statistics for one cube network.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Accesses served by the host-attached cube (cube 0).
    pub local_accesses: u64,
    /// Accesses served by any other cube (crossed the fabric).
    pub remote_accesses: u64,
    /// Hops (inter-cube edges) traversed per access, one way.
    pub hops: Counter,
    /// Host round-trip latency of cube-0 accesses, in cycles.
    pub local_latency: Counter,
    /// Host round-trip latency of remote-cube accesses, in cycles.
    pub remote_latency: Counter,
    /// FLITs serialized onto inter-cube edges (both directions).
    pub transit_flits: u128,
    /// Busy time accumulated on inter-cube edges, in 1/16-cycle fixed
    /// point (lossless for the integer cache format).
    pub transit_busy_x16: u128,
    /// Accesses per cube (index = cube id).
    pub per_cube_accesses: Vec<u64>,
    /// Bank conflicts per cube (index = cube id).
    pub per_cube_conflicts: Vec<u64>,
}

impl NetStats {
    /// Empty stats sized for `cubes` cubes.
    pub fn new(cubes: usize) -> Self {
        NetStats {
            per_cube_accesses: vec![0; cubes],
            per_cube_conflicts: vec![0; cubes],
            ..NetStats::default()
        }
    }

    /// Record one completed access.
    pub fn record_access(&mut self, cube: u16, hops: usize, conflict: bool, latency: u64) {
        self.hops.record(hops as u64);
        if cube == 0 {
            self.local_accesses += 1;
            self.local_latency.record(latency);
        } else {
            self.remote_accesses += 1;
            self.remote_latency.record(latency);
        }
        if let Some(a) = self.per_cube_accesses.get_mut(cube as usize) {
            *a += 1;
        }
        if conflict {
            if let Some(c) = self.per_cube_conflicts.get_mut(cube as usize) {
                *c += 1;
            }
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }

    /// Fraction of accesses that crossed the fabric (0.0 when idle).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.remote_accesses as f64 / total as f64
        }
    }

    /// Merge another network's stats into this one (multi-node runs).
    pub fn merge(&mut self, other: &NetStats) {
        self.local_accesses += other.local_accesses;
        self.remote_accesses += other.remote_accesses;
        self.hops.merge(&other.hops);
        self.local_latency.merge(&other.local_latency);
        self.remote_latency.merge(&other.remote_latency);
        self.transit_flits += other.transit_flits;
        self.transit_busy_x16 += other.transit_busy_x16;
        if self.per_cube_accesses.len() < other.per_cube_accesses.len() {
            self.per_cube_accesses
                .resize(other.per_cube_accesses.len(), 0);
        }
        for (i, v) in other.per_cube_accesses.iter().enumerate() {
            self.per_cube_accesses[i] += v;
        }
        if self.per_cube_conflicts.len() < other.per_cube_conflicts.len() {
            self.per_cube_conflicts
                .resize(other.per_cube_conflicts.len(), 0);
        }
        for (i, v) in other.per_cube_conflicts.iter().enumerate() {
            self.per_cube_conflicts[i] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_local_remote() {
        let mut s = NetStats::new(4);
        s.record_access(0, 0, false, 300);
        s.record_access(2, 2, true, 500);
        s.record_access(3, 2, false, 520);
        assert_eq!(s.local_accesses, 1);
        assert_eq!(s.remote_accesses, 2);
        assert_eq!(s.accesses(), 3);
        assert!((s.remote_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.per_cube_accesses, vec![1, 0, 1, 1]);
        assert_eq!(s.per_cube_conflicts, vec![0, 0, 1, 0]);
        assert_eq!(s.remote_latency.mean(), 510.0);
        assert_eq!(s.hops.max, 2);
    }

    #[test]
    fn merge_accumulates_and_resizes() {
        let mut a = NetStats::new(1);
        a.record_access(0, 0, false, 100);
        let mut b = NetStats::new(4);
        b.record_access(3, 3, true, 900);
        a.merge(&b);
        assert_eq!(a.accesses(), 2);
        assert_eq!(a.per_cube_accesses, vec![1, 0, 0, 1]);
        assert_eq!(a.per_cube_conflicts, vec![0, 0, 0, 1]);
    }
}
