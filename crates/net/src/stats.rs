//! Network-level statistics: local/remote split, hop counts, transit
//! traffic.
//!
//! These are the observables the chain-sweep and placement experiments
//! report: how much traffic left the host-attached cube, how many hops
//! it paid, and what that did to its round-trip latency.

use mac_types::{Counter, Histogram};
use serde::{Deserialize, Serialize};

/// Aggregate statistics for one cube network.
///
/// # Histogram bucket boundaries
///
/// The hop and latency distributions use [`mac_types::Histogram`]'s
/// log-scaled buckets: bucket `i` holds values in `[2^i, 2^(i+1))` —
/// the **upper edge is exclusive** — except bucket 0, which holds both
/// 0 and 1. So a 2-hop access lands in bucket 1 (`[2, 4)`), not bucket
/// 0, and a latency of exactly 1024 lands in bucket 10 (`[1024, 2048)`),
/// not bucket 9. [`Histogram::quantile`] reports the *inclusive* upper
/// bound of the containing bucket (`2^(i+1) - 1`). The boundary tests
/// below pin this down value by value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Accesses served by the host-attached cube (cube 0).
    pub local_accesses: u64,
    /// Accesses served by any other cube (crossed the fabric).
    pub remote_accesses: u64,
    /// Hops (inter-cube edges) traversed per access, one way.
    pub hops: Counter,
    /// Hop-count distribution (log-scaled buckets; see the struct docs
    /// for boundary semantics).
    pub hop_hist: Histogram,
    /// Host round-trip latency of cube-0 accesses, in cycles.
    pub local_latency: Counter,
    /// Host round-trip latency of remote-cube accesses, in cycles.
    pub remote_latency: Counter,
    /// Round-trip latency distribution over *all* accesses (local and
    /// remote), for p50/p99 reporting.
    pub latency_hist: Histogram,
    /// FLITs serialized onto inter-cube edges (both directions).
    pub transit_flits: u128,
    /// Busy time accumulated on inter-cube edges, in 1/16-cycle fixed
    /// point (lossless for the integer cache format).
    pub transit_busy_x16: u128,
    /// Accesses per cube (index = cube id).
    pub per_cube_accesses: Vec<u64>,
    /// Bank conflicts per cube (index = cube id).
    pub per_cube_conflicts: Vec<u64>,
}

impl NetStats {
    /// Empty stats sized for `cubes` cubes.
    pub fn new(cubes: usize) -> Self {
        NetStats {
            per_cube_accesses: vec![0; cubes],
            per_cube_conflicts: vec![0; cubes],
            ..NetStats::default()
        }
    }

    /// Record one completed access.
    pub fn record_access(&mut self, cube: u16, hops: usize, conflict: bool, latency: u64) {
        self.hops.record(hops as u64);
        self.hop_hist.record(hops as u64);
        self.latency_hist.record(latency);
        if cube == 0 {
            self.local_accesses += 1;
            self.local_latency.record(latency);
        } else {
            self.remote_accesses += 1;
            self.remote_latency.record(latency);
        }
        if let Some(a) = self.per_cube_accesses.get_mut(cube as usize) {
            *a += 1;
        }
        if conflict {
            if let Some(c) = self.per_cube_conflicts.get_mut(cube as usize) {
                *c += 1;
            }
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }

    /// Fraction of accesses that crossed the fabric (0.0 when idle).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.remote_accesses as f64 / total as f64
        }
    }

    /// Self-check the counters against each other, returning a
    /// description of the first inconsistency. [`NetStats::record_access`]
    /// updates every derived counter at once, so these identities hold at
    /// any instant of a run.
    pub fn consistency_error(&self) -> Option<String> {
        let total = self.accesses();
        if self.hops.events != total {
            return Some(format!(
                "NetStats: {} hop samples != {} accesses",
                self.hops.events, total
            ));
        }
        if self.local_latency.events != self.local_accesses
            || self.remote_latency.events != self.remote_accesses
        {
            return Some(format!(
                "NetStats: latency samples {}/{} != accesses {}/{} (local/remote)",
                self.local_latency.events,
                self.remote_latency.events,
                self.local_accesses,
                self.remote_accesses
            ));
        }
        if self.hop_hist.count() != total || self.latency_hist.count() != total {
            return Some(format!(
                "NetStats: histogram counts {}/{} != {} accesses",
                self.hop_hist.count(),
                self.latency_hist.count(),
                total
            ));
        }
        let per_cube: u64 = self.per_cube_accesses.iter().sum();
        if per_cube != total {
            return Some(format!(
                "NetStats: per-cube accesses sum {per_cube} != {total} total"
            ));
        }
        let conflicts: u64 = self.per_cube_conflicts.iter().sum();
        if conflicts > total {
            return Some(format!(
                "NetStats: {conflicts} conflicts from {total} accesses"
            ));
        }
        None
    }

    /// Merge another network's stats into this one (multi-node runs).
    pub fn merge(&mut self, other: &NetStats) {
        self.local_accesses += other.local_accesses;
        self.remote_accesses += other.remote_accesses;
        self.hops.merge(&other.hops);
        self.hop_hist.merge(&other.hop_hist);
        self.local_latency.merge(&other.local_latency);
        self.remote_latency.merge(&other.remote_latency);
        self.latency_hist.merge(&other.latency_hist);
        self.transit_flits += other.transit_flits;
        self.transit_busy_x16 += other.transit_busy_x16;
        if self.per_cube_accesses.len() < other.per_cube_accesses.len() {
            self.per_cube_accesses
                .resize(other.per_cube_accesses.len(), 0);
        }
        for (i, v) in other.per_cube_accesses.iter().enumerate() {
            self.per_cube_accesses[i] += v;
        }
        if self.per_cube_conflicts.len() < other.per_cube_conflicts.len() {
            self.per_cube_conflicts
                .resize(other.per_cube_conflicts.len(), 0);
        }
        for (i, v) in other.per_cube_conflicts.iter().enumerate() {
            self.per_cube_conflicts[i] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_local_remote() {
        let mut s = NetStats::new(4);
        s.record_access(0, 0, false, 300);
        s.record_access(2, 2, true, 500);
        s.record_access(3, 2, false, 520);
        assert_eq!(s.local_accesses, 1);
        assert_eq!(s.remote_accesses, 2);
        assert_eq!(s.accesses(), 3);
        assert!((s.remote_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.per_cube_accesses, vec![1, 0, 1, 1]);
        assert_eq!(s.per_cube_conflicts, vec![0, 0, 1, 0]);
        assert_eq!(s.remote_latency.mean(), 510.0);
        assert_eq!(s.hops.max, 2);
    }

    #[test]
    fn consistency_catches_lost_samples() {
        let mut s = NetStats::new(4);
        assert_eq!(s.consistency_error(), None);
        s.record_access(0, 0, false, 100);
        s.record_access(2, 2, true, 500);
        assert_eq!(s.consistency_error(), None);
        s.remote_accesses += 1; // an access that left no latency sample
        assert!(s.consistency_error().is_some());
        s.remote_accesses -= 1;
        s.per_cube_accesses[3] += 1;
        assert!(s.consistency_error().unwrap().contains("per-cube"));
    }

    #[test]
    fn merge_accumulates_and_resizes() {
        let mut a = NetStats::new(1);
        a.record_access(0, 0, false, 100);
        let mut b = NetStats::new(4);
        b.record_access(3, 3, true, 900);
        a.merge(&b);
        assert_eq!(a.accesses(), 2);
        assert_eq!(a.per_cube_accesses, vec![1, 0, 0, 1]);
        assert_eq!(a.per_cube_conflicts, vec![0, 0, 0, 1]);
        assert_eq!(a.hop_hist.count(), 2);
        assert_eq!(a.latency_hist.count(), 2);
    }

    #[test]
    fn hop_hist_bucket_upper_edges_are_exclusive() {
        // Bucket i spans [2^i, 2^(i+1)); a value equal to a power of two
        // belongs to the bucket it *opens*, not the one below it.
        for (hops, bucket) in [
            (0usize, 0usize),
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 2),
            (7, 2),
            (8, 3),
        ] {
            let mut s = NetStats::new(16);
            s.record_access(1, hops, false, 0);
            let got = s.hop_hist.buckets().iter().position(|&n| n > 0).unwrap();
            assert_eq!(got, bucket, "hops={hops} must land in bucket {bucket}");
        }
    }

    #[test]
    fn latency_hist_bucket_upper_edges_are_exclusive() {
        for (latency, bucket) in [
            (1u64, 0usize),
            (2, 1),
            (1023, 9),  // 2^10 - 1: last value of [512, 1024)
            (1024, 10), // exactly 2^10 opens [1024, 2048)
            (1025, 10),
            (2047, 10),
            (2048, 11),
        ] {
            let mut s = NetStats::new(1);
            s.record_access(0, 0, false, latency);
            let got = s
                .latency_hist
                .buckets()
                .iter()
                .position(|&n| n > 0)
                .unwrap();
            assert_eq!(
                got, bucket,
                "latency={latency} must land in bucket {bucket}"
            );
        }
    }

    #[test]
    fn quantile_reports_inclusive_bucket_upper_bound() {
        let mut s = NetStats::new(4);
        // Three accesses at exactly 3 hops: bucket 1 = [2, 4), whose
        // reported quantile is the inclusive upper bound 3 — not 4.
        for _ in 0..3 {
            s.record_access(2, 3, false, 1024);
        }
        assert_eq!(s.hop_hist.quantile(0.5), 3);
        assert_eq!(s.hop_hist.quantile(1.0), 3);
        // Latency 1024 sits at the *bottom* of [1024, 2048): the
        // quantile is that bucket's inclusive upper bound, 2047.
        assert_eq!(s.latency_hist.quantile(0.5), 2047);
    }

    #[test]
    fn zero_and_one_hop_share_bucket_zero() {
        let mut s = NetStats::new(2);
        s.record_access(0, 0, false, 10); // local: 0 hops
        s.record_access(1, 1, false, 20); // neighbor: 1 hop
        assert_eq!(s.hop_hist.buckets()[0], 2);
        assert_eq!(s.hop_hist.quantile(1.0), 1, "bucket 0's upper bound is 1");
    }
}
