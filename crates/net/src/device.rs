//! A network of HMC cubes behind one host attach point.
//!
//! [`NetDevice`] implements [`hmc_model::MemoryDevice`], so the
//! full-system simulator can swap it in wherever a single
//! [`hmc_model::HmcDevice`] fits. Internally it holds one vault/bank
//! complex per cube, a routed [`Fabric`] between them, and the host's
//! link group in front of cube 0.
//!
//! A transaction's path generalizes the single-device pipeline:
//!
//! ```text
//! host links -> cube 0 [-> fabric hops -> cube k] -> logic -> vault
//!     -> logic [-> fabric hops -> cube 0] -> host links
//! ```
//!
//! With one cube the bracketed stages vanish and every arithmetic step —
//! including the link-retry RNG draw sequence — matches
//! [`hmc_model::HmcDevice::submit`] exactly; a 1-cube network is the
//! single-device model, bit for bit. That equivalence is what lets the
//! chain-sweep experiments attribute every cycle of divergence to the
//! fabric itself.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hmc_model::{HmcStats, LinkSet, MemoryDevice, NetAddrMap, VaultSet};
use mac_telemetry::{TraceEvent, Tracer};
use mac_types::{CubeId, Cycle, HmcConfig, HmcRequest, HmcResponse, NetConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fabric::Fabric;
use crate::stats::NetStats;
use crate::topology::Topology;

/// A multi-cube HMC network presenting as one memory device.
#[derive(Debug, Clone)]
pub struct NetDevice {
    map: NetAddrMap,
    topo: Topology,
    host_links: LinkSet,
    fabric: Fabric,
    /// One vault/bank complex per cube.
    vaults: Vec<VaultSet>,
    stats: HmcStats,
    net_stats: NetStats,
    logic_latency: u64,
    link_error_rate: f64,
    retry_penalty: u64,
    rng: SmallRng,
    /// Host-link retransmissions performed (stat).
    pub retries: u64,
    completion: BinaryHeap<Reverse<(Cycle, u64)>>,
    inflight: std::collections::HashMap<u64, HmcResponse>,
    seq: u64,
    tracer: Tracer,
}

impl NetDevice {
    /// Build a cube network: `cfg` describes each cube (and the host
    /// links), `net` the network shape.
    pub fn new(cfg: &HmcConfig, net: &NetConfig) -> Self {
        let topo = Topology::new(net);
        let fabric = Fabric::new(cfg, net, &topo);
        NetDevice {
            map: NetAddrMap::new(cfg, net),
            host_links: LinkSet::new(cfg),
            fabric,
            vaults: (0..net.cubes).map(|_| VaultSet::new(cfg)).collect(),
            stats: HmcStats::default(),
            net_stats: NetStats::new(net.cubes),
            logic_latency: cfg.logic_latency,
            link_error_rate: cfg.link_error_rate.clamp(0.0, 0.99),
            retry_penalty: cfg.retry_penalty,
            rng: SmallRng::seed_from_u64(cfg.error_seed),
            retries: 0,
            completion: BinaryHeap::new(),
            inflight: std::collections::HashMap::new(),
            seq: 0,
            tracer: Tracer::disabled(),
            topo,
        }
    }

    /// Request/response packet lengths in FLITs, per HMC §2.2.2 —
    /// identical to the single-device accounting.
    pub fn packet_flits(req: &HmcRequest) -> (u64, u64) {
        if req.is_atomic {
            (2, 2)
        } else if req.is_write {
            (1 + req.size.flits(), 1)
        } else {
            (1, 1 + req.size.flits())
        }
    }

    /// Serialize a request of `flits` onto the host links (with CRC
    /// retry injection), then forward it hop by hop to `dest`. Returns
    /// `(host link used, cycle fully arrived at dest)`.
    ///
    /// Exposed so a per-cube-placement system loop can push raw
    /// (un-coalesced) packets to a remote cube's ingress.
    pub fn deliver_request(&mut self, dest: u16, now: Cycle, flits: u64) -> (usize, Cycle) {
        let (link, mut at_cube) = self.host_links.send_request(now, flits);
        while self.link_error_rate > 0.0 && self.rng.gen_bool(self.link_error_rate) {
            self.retries += 1;
            at_cube = self
                .host_links
                .send_response(link, at_cube + self.retry_penalty, 0)
                .max(at_cube + self.retry_penalty);
            let (_, resent) = self.host_links.send_request(at_cube, flits);
            at_cube = resent;
        }
        let path = self.topo.path(0, dest);
        let mut t = at_cube;
        for w in path.windows(2) {
            let edge = self.topo.edge_index(w[0], w[1]);
            t = self.fabric.forward(&self.topo, edge, t, flits, dest, false);
        }
        (link, t)
    }

    /// Forward a response of `flits` from cube `src` back to cube 0 hop
    /// by hop, then serialize it upstream on host link `link`. Returns
    /// the cycle it has fully arrived at the host.
    pub fn deliver_response(&mut self, src: u16, link: usize, now: Cycle, flits: u64) -> Cycle {
        let path = self.topo.path(src, 0);
        let mut t = now;
        for w in path.windows(2) {
            let edge = self.topo.edge_index(w[0], w[1]);
            t = self.fabric.forward(&self.topo, edge, t, flits, 0, true);
        }
        self.host_links.send_response(link, t, flits)
    }

    /// Pass a request through its home cube's logic layer and vault,
    /// arriving at the cube at `at_cube`. Returns the owning cube, the
    /// cycle the response packet is ready to leave that cube, and
    /// whether the access hit a busy bank.
    pub fn cube_access(&mut self, req: &HmcRequest, at_cube: Cycle) -> (CubeId, Cycle, bool) {
        let (cube, loc) = self.map.locate(req.addr);
        let at_vault = at_cube + self.logic_latency;
        let sched = self.vaults[cube.0 as usize].schedule(loc, at_vault, req.size.bytes());
        (cube, sched.done + self.logic_latency, sched.conflict)
    }

    /// Record a finished access (device + network stats, trace event)
    /// and queue its response for [`MemoryDevice::drain_completed`].
    pub fn finish_access(
        &mut self,
        req: HmcRequest,
        cube: CubeId,
        conflict: bool,
        completed: Cycle,
        now: Cycle,
    ) {
        let latency = completed.saturating_sub(req.dispatched_at.min(now));
        self.tracer.emit(completed, || TraceEvent::HmcComplete {
            addr: req.addr.raw(),
            targets: req.targets.len() as u8,
            latency,
        });
        self.stats.record_access(
            req.size,
            req.useful_bytes(),
            req.merged_count().max(1),
            conflict,
            latency,
        );
        let hops = self.topo.hops(0, cube.0);
        self.net_stats
            .record_access(cube.0, hops, conflict, latency);

        let rsp = HmcResponse {
            addr: req.addr,
            size: req.size,
            is_write: req.is_write,
            targets: req.targets,
            raw_ids: req.raw_ids,
            completed_at: completed,
            conflicts: conflict as u64,
        };
        let id = self.seq;
        self.seq += 1;
        self.completion.push(Reverse((completed, id)));
        self.inflight.insert(id, rsp);
    }

    /// The network's address map (cube + vault/bank decomposition).
    pub fn addr_map(&self) -> &NetAddrMap {
        &self.map
    }

    /// The network's topology and routing tables.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Whether the vault that would serve `req` has queue room at `now`,
    /// at whichever cube owns the address.
    pub fn can_accept(&mut self, req: &HmcRequest, now: Cycle) -> bool {
        let (cube, loc) = self.map.locate(req.addr);
        self.vaults[cube.0 as usize].can_accept(loc.vault, now)
    }

    /// Submit one transaction at cycle `now` (non-decreasing across
    /// calls); returns the cycle its response has fully arrived back at
    /// the host.
    pub fn submit(&mut self, req: HmcRequest, now: Cycle) -> Cycle {
        let (req_flits, rsp_flits) = Self::packet_flits(&req);
        let dest = self.map.cube_of(req.addr);
        let (link, at_cube) = self.deliver_request(dest.0, now, req_flits);
        let (cube, rsp_ready, conflict) = self.cube_access(&req, at_cube);
        debug_assert_eq!(cube, dest);
        let completed = self.deliver_response(cube.0, link, rsp_ready, rsp_flits);
        self.finish_access(req, cube, conflict, completed, now);
        completed
    }

    /// Pop every response whose completion cycle is `<= now`, in
    /// completion order.
    pub fn drain_completed(&mut self, now: Cycle) -> Vec<HmcResponse> {
        let mut out = Vec::new();
        while let Some(&Reverse((t, id))) = self.completion.peek() {
            if t > now {
                break;
            }
            self.completion.pop();
            out.push(self.inflight.remove(&id).expect("inflight response"));
        }
        out
    }

    /// Transactions submitted but not yet drained.
    pub fn pending(&self) -> usize {
        self.completion.len()
    }

    /// Earliest outstanding completion, if any.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.completion.peek().map(|&Reverse((t, _))| t)
    }

    /// Accumulated per-access device statistics (aggregated over cubes).
    pub fn stats(&self) -> &HmcStats {
        &self.stats
    }

    /// Network-level statistics, with fabric transit counters folded in.
    pub fn net_stats(&self) -> NetStats {
        let mut s = self.net_stats.clone();
        s.transit_flits = self.fabric.transit_flits();
        s.transit_busy_x16 = self.fabric.transit_busy_x16();
        s
    }

    /// Bank-busy cycles summed over every cube (utilization accounting).
    pub fn bank_busy_cycles(&self) -> u128 {
        self.vaults.iter().map(|v| v.bank_busy_cycles()).sum()
    }

    /// Attach a tracer. Host-link and completion events keep the
    /// caller's node tag; vault and hop events are re-tagged with the
    /// cube id that produced them, so per-vault analyzers resolve per
    /// cube.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.host_links.set_tracer(tracer.clone());
        for (c, v) in self.vaults.iter_mut().enumerate() {
            v.set_tracer(tracer.for_node(c as u16));
        }
        self.fabric.set_tracer(&tracer);
        self.tracer = tracer;
    }

    /// Append one metrics sample: host-link utilization, fabric transit
    /// load, local/remote access counters, and per-cube vault queue
    /// depths plus access/conflict counters (scoped `cube{c}/...`).
    /// Observational — reads state, never mutates it.
    pub fn sample_metrics(&self, now: Cycle, s: &mut mac_metrics::Sampler<'_>) {
        s.counter("local_accesses", self.net_stats.local_accesses);
        s.counter("remote_accesses", self.net_stats.remote_accesses);
        s.gauge("inflight", self.completion.len() as u64);
        self.host_links.sample_metrics(s);
        self.fabric.sample_metrics(s);
        for (c, vaults) in self.vaults.iter().enumerate() {
            s.scoped(&format!("cube{c}"), |s| {
                s.counter("accesses", self.net_stats.per_cube_accesses[c]);
                s.counter("bank_conflicts", self.net_stats.per_cube_conflicts[c]);
                vaults.sample_metrics(now, s);
            });
        }
    }
}

impl MemoryDevice for NetDevice {
    fn can_accept(&mut self, req: &HmcRequest, now: Cycle) -> bool {
        NetDevice::can_accept(self, req, now)
    }
    fn submit(&mut self, req: HmcRequest, now: Cycle) -> Cycle {
        NetDevice::submit(self, req, now)
    }
    fn drain_completed(&mut self, now: Cycle) -> Vec<HmcResponse> {
        NetDevice::drain_completed(self, now)
    }
    fn pending(&self) -> usize {
        NetDevice::pending(self)
    }
    fn next_completion(&self) -> Option<Cycle> {
        NetDevice::next_completion(self)
    }
    fn stats(&self) -> &HmcStats {
        NetDevice::stats(self)
    }
    fn set_tracer(&mut self, tracer: Tracer) {
        NetDevice::set_tracer(self, tracer)
    }
    fn sample_metrics(&self, now: Cycle, s: &mut mac_metrics::Sampler<'_>) {
        NetDevice::sample_metrics(self, now, s)
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_model::HmcDevice;
    use mac_types::{CubeMapping, FlitMap, NetTopology, PhysAddr, ReqSize, Target, TransactionId};

    fn read_req(addr: u64, size: ReqSize, at: Cycle) -> HmcRequest {
        let a = PhysAddr::new(addr);
        let mut fm = FlitMap::new();
        fm.set(a.flit());
        HmcRequest {
            addr: a,
            size,
            is_write: false,
            is_atomic: false,
            flit_map: fm,
            targets: vec![Target {
                tid: 0,
                tag: 0,
                flit: a.flit(),
            }],
            raw_ids: vec![TransactionId(at)],
            dispatched_at: at,
        }
    }

    fn net(cubes: usize) -> NetConfig {
        NetConfig {
            enabled: true,
            cubes,
            topology: NetTopology::DaisyChain,
            mapping: CubeMapping::Interleaved,
            ..NetConfig::default()
        }
    }

    /// The tentpole invariant: one cube behind the net layer is the
    /// single-device model, completion cycle for completion cycle, even
    /// with link-retry randomness in play.
    #[test]
    fn one_cube_matches_hmc_device_exactly() {
        for error_rate in [0.0, 0.25] {
            let cfg = HmcConfig {
                link_error_rate: error_rate,
                ..HmcConfig::default()
            };
            let mut single = HmcDevice::new(&cfg);
            let mut netdev = NetDevice::new(&cfg, &net(1));
            let mut t = 0u64;
            for i in 0..400u64 {
                t += i % 5;
                let addr = (i * 0x9E37_79B9) % (1 << 25);
                let size = match i % 3 {
                    0 => ReqSize::B16,
                    1 => ReqSize::B64,
                    _ => ReqSize::B256,
                };
                let a = single.submit(read_req(addr, size, t), t);
                let b = netdev.submit(read_req(addr, size, t), t);
                assert_eq!(a, b, "request {i} diverged (error rate {error_rate})");
            }
            assert_eq!(single.retries, netdev.retries);
            assert_eq!(single.stats(), netdev.stats());
            let ns = netdev.net_stats();
            assert_eq!(ns.remote_accesses, 0);
            assert_eq!(ns.transit_flits, 0);
        }
    }

    #[test]
    fn remote_cubes_cost_hops() {
        let cfg = HmcConfig::default();
        let mut dev = NetDevice::new(&cfg, &net(4));
        // Interleaved mapping rotates cubes every 2^17 bytes.
        let group = 1u64 << 17;
        let local = dev.submit(read_req(0, ReqSize::B64, 0), 0);
        let far = dev.submit(read_req(3 * group, ReqSize::B64, 0), 0);
        let ns = dev.net_stats();
        assert_eq!(ns.local_accesses, 1);
        assert_eq!(ns.remote_accesses, 1);
        assert_eq!(ns.hops.max, 3);
        // 3 hops out + 3 back, each at least forward_latency.
        assert!(
            far >= local + 6 * NetConfig::default().forward_latency,
            "remote access ({far}) must pay 6 hops over local ({local})"
        );
        assert!(ns.transit_flits > 0);
    }

    #[test]
    fn chain_length_monotonically_raises_remote_latency() {
        // The sweep invariant the experiments rely on: pushing the same
        // far-cube traffic through longer chains costs more cycles.
        let cfg = HmcConfig::default();
        let mut means = Vec::new();
        for cubes in [2usize, 4, 8] {
            let mut dev = NetDevice::new(&cfg, &net(cubes));
            let group = 1u64 << 17;
            let mut t = 0;
            for i in 0..200u64 {
                t += 3;
                // Address the farthest cube in each network.
                let addr = (cubes as u64 - 1) * group + (i * 256) % group;
                dev.submit(read_req(addr, ReqSize::B64, t), t);
            }
            means.push(dev.net_stats().remote_latency.mean());
        }
        assert!(
            means[0] < means[1] && means[1] < means[2],
            "remote latency must grow with chain length: {means:?}"
        );
    }

    #[test]
    fn responses_drain_in_completion_order() {
        let mut dev = NetDevice::new(&HmcConfig::default(), &net(2));
        let group = 1u64 << 17;
        let t1 = dev.submit(read_req(group, ReqSize::B256, 0), 0);
        let t2 = dev.submit(read_req(0x40, ReqSize::B16, 0), 0);
        let all = dev.drain_completed(t1.max(t2));
        assert_eq!(all.len(), 2);
        assert!(all[0].completed_at <= all[1].completed_at);
        assert_eq!(dev.pending(), 0);
    }

    #[test]
    fn per_cube_backpressure_is_independent() {
        let cfg = HmcConfig {
            vault_queue_depth: 1,
            ..HmcConfig::default()
        };
        let mut dev = NetDevice::new(&cfg, &net(2));
        let group = 1u64 << 17;
        let local = read_req(0, ReqSize::B256, 0);
        let remote = read_req(group, ReqSize::B256, 0);
        dev.submit(local.clone(), 0);
        assert!(
            !MemoryDevice::can_accept(&mut dev, &local, 0),
            "cube 0 vault queue is full"
        );
        assert!(
            MemoryDevice::can_accept(&mut dev, &remote, 0),
            "cube 1's same-numbered vault is a different queue"
        );
    }
}
