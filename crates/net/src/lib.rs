//! # mac-net
//!
//! Multi-cube HMC interconnect: topology + routing ([`Topology`]), a
//! serialized link fabric with pass-through forwarding ([`Fabric`]),
//! and a network of cube devices presenting as one
//! [`hmc_model::MemoryDevice`] ([`NetDevice`]).
//!
//! HMC cubes chain over the same SerDes links a host uses (HMC 2.1
//! §7): a cube receiving a packet addressed elsewhere re-serializes it
//! toward the next hop, paying a pass-through latency in its logic
//! layer plus link serialization on the outgoing edge. This crate
//! models that, for daisy chains, rings and a 2×2 mesh, so the MAC
//! evaluation extends from one cube to capacity-scaled networks — and
//! so coalescer *placement* (host-side vs. one MAC per cube ingress)
//! becomes a measurable design axis.
//!
//! Everything is deterministic: routing is table-driven, link
//! arbitration inherits [`mac_types::LinkSelectPolicy`], and error
//! injection only runs on the host link. A 1-cube network reproduces
//! the single-device model bit for bit (see
//! `device::tests::one_cube_matches_hmc_device_exactly`), which anchors
//! the network results to the validated single-cube baseline.

#![warn(missing_docs)]

pub mod device;
pub mod fabric;
pub mod stats;
pub mod topology;

pub use device::NetDevice;
pub use fabric::Fabric;
pub use stats::NetStats;
pub use topology::{Edge, Topology};
