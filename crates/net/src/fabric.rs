//! The inter-cube fabric: serialized, latency-paying links per edge.
//!
//! Every directed edge of the [`Topology`] carries its own link group
//! (same SerDes geometry as the host attach, modeled by
//! [`hmc_model::LinkSet`]). Forwarding a packet across an edge pays:
//!
//! 1. **pass-through latency** — the receiving cube's logic layer must
//!    decode the header, look up the route and re-serialize
//!    (`NetConfig::forward_latency`, ~12 ns by default, per HMC 2.1's
//!    guidance for chained cubes); then
//! 2. **link serialization** — the packet's FLITs occupy the edge for
//!    their transmission time, so transit traffic contends with other
//!    transit traffic crossing the same edge.
//!
//! Fabric edges are modeled error-free: the CRC/retry machinery is only
//! simulated on the host link, which keeps a 1-cube network bit-for-bit
//! identical to the single-device model (the retry RNG draws the same
//! sequence) and is consistent with short, in-package hop distances.

use hmc_model::LinkSet;
use mac_telemetry::{TraceEvent, Tracer};
use mac_types::{Cycle, HmcConfig, NetConfig};

use crate::topology::Topology;

/// The link fabric connecting the cubes of one network.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// One link group per directed edge, indexed like
    /// [`Topology::edges`]. Only the downstream half of each group is
    /// used; direction is encoded by which edge a packet takes.
    edge_links: Vec<LinkSet>,
    forward_latency: u64,
    transit_flits: u128,
    /// One tracer per cube (node field = cube id), for hop events.
    tracers: Vec<Tracer>,
}

impl Fabric {
    /// Build the fabric for a topology, with each edge carrying the
    /// same link geometry as the host attach in `cfg`.
    pub fn new(cfg: &HmcConfig, net: &NetConfig, topo: &Topology) -> Self {
        Fabric {
            edge_links: topo.edges().iter().map(|_| LinkSet::new(cfg)).collect(),
            forward_latency: net.forward_latency,
            transit_flits: 0,
            tracers: vec![Tracer::disabled(); topo.cubes()],
        }
    }

    /// Attach a tracer; hop events are tagged with the forwarding
    /// cube's id in the node field.
    pub fn set_tracer(&mut self, base: &Tracer) {
        for (c, t) in self.tracers.iter_mut().enumerate() {
            *t = base.for_node(c as u16);
        }
    }

    /// Forward a packet of `flits` across one directed edge, starting
    /// at `now`. `dest` is the packet's final cube; `up` marks
    /// response-direction (toward-host) traffic. Returns the cycle the
    /// packet has fully arrived at the edge's receiving cube.
    pub fn forward(
        &mut self,
        topo: &Topology,
        edge: usize,
        now: Cycle,
        flits: u64,
        dest: u16,
        up: bool,
    ) -> Cycle {
        let e = topo.edges()[edge];
        self.tracers[e.from as usize].emit(now, || TraceEvent::HopEnqueue {
            from_cube: e.from as u8,
            to_cube: e.to as u8,
            flits: flits as u16,
            up,
        });
        let depart = now + self.forward_latency;
        let (_, done) = self.edge_links[edge].send_request(depart, flits);
        self.tracers[e.from as usize].emit(depart, || TraceEvent::HopForward {
            cube: e.from as u8,
            dest: dest as u8,
            start: depart,
            done,
        });
        self.transit_flits += flits as u128;
        done
    }

    /// FLITs serialized onto fabric edges so far (both directions).
    pub fn transit_flits(&self) -> u128 {
        self.transit_flits
    }

    /// Busy time accumulated across all edges, in 1/16-cycle ticks.
    pub fn transit_busy_x16(&self) -> u128 {
        self.edge_links
            .iter()
            .map(|l| (l.down_busy_cycles() * 16.0).round() as u128)
            .sum()
    }

    /// Configured pass-through latency per hop, in cycles.
    pub fn forward_latency(&self) -> u64 {
        self.forward_latency
    }

    /// Append fabric transit-load series: cumulative FLITs and busy
    /// x16-cycles summed over every inter-cube edge.
    pub fn sample_metrics(&self, s: &mut mac_metrics::Sampler<'_>) {
        s.counter(
            "transit_flits",
            self.transit_flits.min(u64::MAX as u128) as u64,
        );
        s.counter(
            "transit_busy_x16",
            self.transit_busy_x16().min(u64::MAX as u128) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_types::NetTopology;

    fn setup(cubes: usize) -> (Topology, Fabric) {
        let net = NetConfig {
            enabled: true,
            cubes,
            topology: NetTopology::DaisyChain,
            ..NetConfig::default()
        };
        let topo = Topology::new(&net);
        let fabric = Fabric::new(&HmcConfig::default(), &net, &topo);
        (topo, fabric)
    }

    #[test]
    fn each_hop_pays_forward_latency_plus_serialization() {
        let (topo, mut f) = setup(2);
        let edge = topo.edge_index(0, 1);
        let done = f.forward(&topo, edge, 100, 1, 1, false);
        // 40 cycles pass-through + ~1.75 cycles for 1 FLIT at 28/16.
        assert_eq!(done, 100 + 40 + 2);
        assert_eq!(f.transit_flits(), 1);
    }

    #[test]
    fn transit_traffic_contends_per_edge() {
        let (topo, mut f) = setup(3);
        let e01 = topo.edge_index(0, 1);
        let e12 = topo.edge_index(1, 2);
        // Saturate edge 0->1 with large packets; edge 1->2 stays clear.
        let mut last = 0;
        for _ in 0..8 {
            last = f.forward(&topo, e01, 0, 17, 2, false);
        }
        let clear = f.forward(&topo, e12, 0, 17, 2, false);
        assert!(
            last > clear,
            "8 queued packets on one edge ({last}) outlast one on a clear edge ({clear})"
        );
        assert!(f.transit_busy_x16() > 0);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let (topo, mut f) = setup(2);
        let down = topo.edge_index(0, 1);
        let up = topo.edge_index(1, 0);
        let d = f.forward(&topo, down, 0, 17, 1, false);
        let u = f.forward(&topo, up, 0, 17, 0, true);
        assert_eq!(d, u, "distinct directed edges have distinct channels");
    }
}
