//! Property and fuzz-style tests for the metrics CSV/JSON exporters:
//! encode→decode round-trips over arbitrary snapshots, and `from_csv`
//! on malformed, mutated, and truncated input must return `Err` — never
//! panic, never mis-parse.

use proptest::prelude::*;

use mac_metrics::{MetricsSnapshot, SeriesData, SeriesKind};

/// A safe series-name character set (the encoder never quotes, so
/// legitimate names exclude commas and newlines).
fn name_from(raw: &[u8]) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_/";
    raw.iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

/// Build a snapshot from generator output: unique non-empty names, at
/// least one point per series (the encoder drops empty series, so only
/// such snapshots can round-trip).
#[allow(clippy::type_complexity)]
fn snapshot_from(
    interval: u64,
    series_raw: Vec<(Vec<u8>, bool, Vec<(u64, u64)>)>,
) -> MetricsSnapshot {
    let mut seen = std::collections::BTreeSet::new();
    let mut series = Vec::new();
    for (i, (name_raw, counter, points)) in series_raw.into_iter().enumerate() {
        let mut name = name_from(&name_raw);
        name.push_str(&format!("_{i}")); // force uniqueness
        if !seen.insert(name.clone()) || points.is_empty() {
            continue;
        }
        series.push(SeriesData {
            name,
            kind: if counter {
                SeriesKind::Counter
            } else {
                SeriesKind::Gauge
            },
            points,
        });
    }
    MetricsSnapshot { interval, series }
}

/// Arbitrary text made of the characters that actually appear in the
/// CSV grammar, so fuzz inputs hit the parser's interesting paths
/// (digits, commas, comments, interval tokens) instead of bailing on
/// the first byte.
fn csv_soup(raw: &[u8]) -> String {
    const ALPHABET: &[u8] = b"0123456789,#=abcdefgz \n\t-.counterguage";
    raw.iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

proptest! {
    /// Encode→decode identity for every well-formed snapshot.
    #[test]
    fn csv_round_trips_arbitrary_snapshots(
        interval in 0u64..1_000_000,
        series_raw in prop::collection::vec(
            (
                prop::collection::vec(any::<u8>(), 1..12),
                any::<bool>(),
                prop::collection::vec((0u64..(1 << 40), any::<u64>()), 1..20),
            ),
            0..8,
        ),
    ) {
        let snap = snapshot_from(interval, series_raw);
        let back = MetricsSnapshot::from_csv(&snap.to_csv())
            .expect("encoder output must decode");
        prop_assert_eq!(back, snap);
    }

    /// Arbitrary grammar-flavoured soup: `from_csv` returns `Ok` or
    /// `Err`, but never panics and never fabricates points from rows it
    /// rejected (an accepted parse has as many points as data rows).
    #[test]
    fn from_csv_never_panics_on_soup(raw in prop::collection::vec(any::<u8>(), 0..400)) {
        let text = csv_soup(&raw);
        if let Ok(snap) = MetricsSnapshot::from_csv(&text) {
            let data_rows = text
                .lines()
                .map(str::trim)
                .filter(|l| {
                    !l.is_empty() && !l.starts_with('#') && *l != "cycle,series,kind,value"
                })
                .count();
            let points: usize = snap.series.iter().map(|s| s.points.len()).sum();
            prop_assert_eq!(points, data_rows, "accepted rows != decoded points");
        }
    }

    /// Truncating a valid export anywhere must not panic; a cut through
    /// the final row either drops it or fails cleanly.
    #[test]
    fn from_csv_survives_truncation(
        interval in 1u64..100_000,
        series_raw in prop::collection::vec(
            (
                prop::collection::vec(any::<u8>(), 1..8),
                any::<bool>(),
                prop::collection::vec((0u64..(1 << 30), any::<u64>()), 1..8),
            ),
            1..4,
        ),
        cut_ppm in 0u64..1_000_000,
    ) {
        let snap = snapshot_from(interval, series_raw);
        let csv = snap.to_csv();
        let mut cut = (csv.len() as u64 * cut_ppm / 1_000_000) as usize;
        while cut < csv.len() && !csv.is_char_boundary(cut) {
            cut += 1;
        }
        let truncated = &csv[..cut.min(csv.len())];
        if let Ok(partial) = MetricsSnapshot::from_csv(truncated) {
            let full: usize = snap.series.iter().map(|s| s.points.len()).sum();
            let got: usize = partial.series.iter().map(|s| s.points.len()).sum();
            prop_assert!(got <= full, "truncation cannot add points");
        }
    }

    /// Flipping one character of a valid export must not panic, and a
    /// still-accepted parse keeps the row count consistent.
    #[test]
    fn from_csv_survives_single_char_mutation(
        interval in 1u64..100_000,
        pos_ppm in 0u64..1_000_000,
        replacement in 0u8..128,
        points in prop::collection::vec((0u64..(1 << 30), any::<u64>()), 1..10),
    ) {
        let snap = snapshot_from(interval, vec![(vec![1, 2, 3], true, points)]);
        let csv = snap.to_csv();
        let mut pos = (csv.len() as u64 * pos_ppm / 1_000_000) as usize;
        while pos < csv.len() && !csv.is_char_boundary(pos) {
            pos += 1;
        }
        if pos >= csv.len() {
            return Ok::<(), String>(());
        }
        let mut mutated = String::with_capacity(csv.len());
        mutated.push_str(&csv[..pos]);
        mutated.push((replacement as char).to_ascii_lowercase());
        let rest = &csv[pos..];
        let mut chars = rest.chars();
        chars.next();
        mutated.push_str(chars.as_str());
        let _ = MetricsSnapshot::from_csv(&mutated); // must not panic
        Ok::<(), String>(())
    }

    /// The JSON encoder always produces structurally balanced output
    /// with the schema marker and every series name present, whatever
    /// the snapshot contents (including names needing escaping).
    #[test]
    fn to_json_is_balanced_and_complete(
        interval in 0u64..1_000_000,
        series_raw in prop::collection::vec(
            (
                prop::collection::vec(any::<u8>(), 1..10),
                any::<bool>(),
                prop::collection::vec((0u64..(1 << 40), any::<u64>()), 1..10),
            ),
            0..6,
        ),
    ) {
        let snap = snapshot_from(interval, series_raw);
        let json = snap.to_json();
        prop_assert!(json.starts_with("{\"schema\":\"mac-metrics-v1\""));
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        prop_assert_eq!(depth, 0, "unbalanced JSON");
        for s in &snap.series {
            prop_assert!(json.contains(&format!("\"name\":\"{}\"", s.name)));
        }
    }
}
