//! CSV/JSON encoding of sampled time-series, plus the CSV decoder used
//! by `metrics_tools` and the determinism tests.
//!
//! # Schema
//!
//! CSV is the canonical machine-readable format: a comment line carrying
//! the sampling interval, a header, then one row per point in series
//! name order (points in cycle order within a series):
//!
//! ```text
//! # mac-metrics v1 interval=10000
//! cycle,series,kind,value
//! 10000,node0/arq_occupancy,gauge,14
//! ```
//!
//! JSON mirrors the same data grouped by series:
//!
//! ```text
//! {"schema":"mac-metrics-v1","interval":10000,"series":[
//!   {"name":"node0/arq_occupancy","kind":"gauge","points":[[10000,14]]}
//! ]}
//! ```
//!
//! Both encoders are fully deterministic (BTreeMap ordering upstream, no
//! floats, `\n` line endings), so identical runs produce byte-identical
//! files regardless of `--jobs`.

use crate::SeriesKind;

/// One named time-series: `(cycle, value)` points in cycle order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesData {
    /// `/`-separated series path, e.g. `node0/vault3_queue`.
    pub name: String,
    /// Gauge or cumulative counter.
    pub kind: SeriesKind,
    /// `(sample cycle, value)` pairs in increasing cycle order.
    pub points: Vec<(u64, u64)>,
}

impl SeriesData {
    /// The value at the last sample (0 for an empty series).
    pub fn last(&self) -> u64 {
        self.points.last().map(|&(_, v)| v).unwrap_or(0)
    }

    /// Per-window deltas `(cycle, value - previous value)` — the rate
    /// view of a cumulative counter. The first window's delta is its
    /// absolute value. Saturates at 0 if a series ever decreases.
    pub fn deltas(&self) -> Vec<(u64, u64)> {
        let mut prev = 0u64;
        self.points
            .iter()
            .map(|&(c, v)| {
                let d = v.saturating_sub(prev);
                prev = v;
                (c, d)
            })
            .collect()
    }
}

/// A full export of one run's sampled metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Sampling interval in simulated cycles.
    pub interval: u64,
    /// Every series, in name (BTreeMap) order.
    pub series: Vec<SeriesData>,
}

impl MetricsSnapshot {
    /// Encode as CSV (see module docs for the schema).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# mac-metrics v1 interval={}\n", self.interval));
        out.push_str("cycle,series,kind,value\n");
        for s in &self.series {
            for &(cycle, value) in &s.points {
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    cycle,
                    s.name,
                    s.kind.as_str(),
                    value
                ));
            }
        }
        out
    }

    /// The CSV preamble shared by both row orders: the interval comment
    /// plus the column header.
    pub fn csv_header(&self) -> String {
        format!(
            "# mac-metrics v1 interval={}\ncycle,series,kind,value\n",
            self.interval
        )
    }

    /// Encode as CSV in **cycle-major** row order: all series' points at
    /// one sample cycle (in series-name order) before the next cycle.
    /// Same grammar and byte content as [`MetricsSnapshot::to_csv`], just
    /// reordered — this is the *streaming* form: because the sampler
    /// appends one point per series per interval atomically, every row
    /// for a sampled cycle is final the moment the cycle appears, so a
    /// live stream can emit rows incrementally with
    /// [`MetricsSnapshot::csv_rows_after`] and the concatenation equals
    /// this encoding of the final snapshot.
    pub fn to_csv_cycle_major(&self) -> String {
        let mut out = self.csv_header();
        for row in self.csv_rows_after(None) {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }

    /// Cycle-major data rows (no header, no trailing newline per row)
    /// for sample cycles strictly greater than `after` (`None` = all).
    /// Incremental streaming: remember the last cycle emitted and pass
    /// it back on the next snapshot.
    pub fn csv_rows_after(&self, after: Option<u64>) -> Vec<String> {
        let mut rows: Vec<(u64, usize, u64)> = Vec::new();
        for (i, s) in self.series.iter().enumerate() {
            for &(cycle, value) in &s.points {
                if after.is_none_or(|a| cycle > a) {
                    rows.push((cycle, i, value));
                }
            }
        }
        rows.sort_unstable_by_key(|&(cycle, i, _)| (cycle, i));
        rows.into_iter()
            .map(|(cycle, i, value)| {
                format!(
                    "{},{},{},{}",
                    cycle,
                    self.series[i].name,
                    self.series[i].kind.as_str(),
                    value
                )
            })
            .collect()
    }

    /// The largest sample cycle present in any series (`None` if no
    /// points yet) — the stream cursor for [`MetricsSnapshot::csv_rows_after`].
    pub fn last_cycle(&self) -> Option<u64> {
        self.series
            .iter()
            .filter_map(|s| s.points.last().map(|&(c, _)| c))
            .max()
    }

    /// Encode as JSON (see module docs for the schema).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"mac-metrics-v1\",\"interval\":{},\"series\":[",
            self.interval
        ));
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"name\":\"{}\",\"kind\":\"{}\",\"points\":[",
                json_escape(&s.name),
                s.kind.as_str()
            ));
            for (j, &(cycle, value)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{cycle},{value}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Decode a CSV produced by [`MetricsSnapshot::to_csv`] or
    /// [`MetricsSnapshot::to_csv_cycle_major`]. Rows may arrive in either
    /// row order (they are regrouped by series name, in first-appearance
    /// order); unknown comment lines are ignored.
    pub fn from_csv(text: &str) -> Result<MetricsSnapshot, String> {
        let mut interval = 0u64;
        let mut series: Vec<SeriesData> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line == "cycle,series,kind,value" {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if let Some(iv) = comment
                    .split_whitespace()
                    .find_map(|tok| tok.strip_prefix("interval="))
                {
                    interval = iv
                        .parse()
                        .map_err(|_| format!("line {}: bad interval", lineno + 1))?;
                }
                continue;
            }
            let mut fields = line.split(',');
            let err = || format!("line {}: expected cycle,series,kind,value", lineno + 1);
            let cycle: u64 = fields.next().and_then(|f| f.parse().ok()).ok_or_else(err)?;
            let name = fields.next().ok_or_else(err)?;
            let kind = fields.next().and_then(SeriesKind::parse).ok_or_else(err)?;
            let value: u64 = fields.next().and_then(|f| f.parse().ok()).ok_or_else(err)?;
            if fields.next().is_some() {
                return Err(err());
            }
            match series.iter_mut().find(|s| s.name == name) {
                Some(s) => s.points.push((cycle, value)),
                None => series.push(SeriesData {
                    name: name.to_string(),
                    kind,
                    points: vec![(cycle, value)],
                }),
            }
        }
        Ok(MetricsSnapshot { interval, series })
    }

    /// Look up a series by exact name.
    pub fn get(&self, name: &str) -> Option<&SeriesData> {
        self.series.iter().find(|s| s.name == name)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsHub;

    fn sample_snapshot() -> MetricsSnapshot {
        let hub = MetricsHub::new(50);
        for cycle in [50u64, 100] {
            hub.sample(cycle, |s| {
                s.counter("emitted", cycle * 3);
                s.scoped("node0", |s| s.gauge("arq_occupancy", cycle / 10));
            });
        }
        hub.snapshot().unwrap()
    }

    #[test]
    fn csv_round_trips() {
        let snap = sample_snapshot();
        let csv = snap.to_csv();
        assert!(csv.starts_with("# mac-metrics v1 interval=50\n"));
        assert!(csv.contains("50,emitted,counter,150\n"));
        assert!(csv.contains("100,node0/arq_occupancy,gauge,10\n"));
        let back = MetricsSnapshot::from_csv(&csv).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_shape_is_stable() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"mac-metrics-v1\",\"interval\":50,"));
        assert!(json.contains(
            "{\"name\":\"emitted\",\"kind\":\"counter\",\"points\":[[50,150],[100,300]]}"
        ));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn cycle_major_reorders_but_preserves_content() {
        let snap = sample_snapshot();
        let cm = snap.to_csv_cycle_major();
        assert!(cm.starts_with("# mac-metrics v1 interval=50\ncycle,series,kind,value\n"));
        // All series at cycle 50 precede anything at cycle 100, in
        // series-name order within a cycle.
        let rows: Vec<&str> = cm.lines().skip(2).collect();
        assert_eq!(
            rows,
            [
                "50,emitted,counter,150",
                "50,node0/arq_occupancy,gauge,5",
                "100,emitted,counter,300",
                "100,node0/arq_occupancy,gauge,10",
            ]
        );
        // Same rows as the series-major form, just reordered.
        let sm = snap.to_csv();
        let mut a: Vec<&str> = sm.lines().collect();
        let mut b: Vec<&str> = cm.lines().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // And it decodes back to the same snapshot.
        assert_eq!(MetricsSnapshot::from_csv(&cm).unwrap(), snap);
    }

    #[test]
    fn incremental_rows_concatenate_to_the_full_encoding() {
        let hub = MetricsHub::new(50);
        let mut streamed = String::new();
        let mut cursor = None;
        for cycle in [50u64, 100, 150] {
            hub.sample(cycle, |s| {
                s.counter("emitted", cycle * 3);
                s.scoped("node0", |s| s.gauge("arq_occupancy", cycle / 10));
            });
            let snap = hub.snapshot().unwrap();
            if cursor.is_none() {
                streamed.push_str(&snap.csv_header());
            }
            for row in snap.csv_rows_after(cursor) {
                streamed.push_str(&row);
                streamed.push('\n');
            }
            cursor = snap.last_cycle();
        }
        let final_snap = hub.snapshot().unwrap();
        assert_eq!(streamed, final_snap.to_csv_cycle_major());
        assert_eq!(final_snap.last_cycle(), Some(150));
        // Nothing new: no rows.
        assert!(final_snap.csv_rows_after(Some(150)).is_empty());
    }

    #[test]
    fn from_csv_rejects_malformed_rows() {
        assert!(MetricsSnapshot::from_csv("1,a,gauge\n").is_err());
        assert!(MetricsSnapshot::from_csv("x,a,gauge,1\n").is_err());
        assert!(MetricsSnapshot::from_csv("1,a,banana,1\n").is_err());
        assert!(MetricsSnapshot::from_csv("1,a,gauge,1,9\n").is_err());
    }

    #[test]
    fn deltas_and_last() {
        let s = SeriesData {
            name: "c".into(),
            kind: SeriesKind::Counter,
            points: vec![(10, 4), (20, 9), (30, 9)],
        };
        assert_eq!(s.last(), 9);
        assert_eq!(s.deltas(), [(10, 4), (20, 5), (30, 0)]);
        let empty = SeriesData {
            name: "e".into(),
            kind: SeriesKind::Gauge,
            points: vec![],
        };
        assert_eq!(empty.last(), 0);
        assert!(empty.deltas().is_empty());
    }
}
