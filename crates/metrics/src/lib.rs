//! Interval-sampled metrics for the MAC reproduction.
//!
//! The paper's headline claims are rates over time — coalescing rate,
//! link utilization, bank-conflict intensity — but end-of-run aggregate
//! statistics flatten the dynamics that explain them. This crate adds a
//! windowed metrics layer: simulation loops sample component state every
//! `interval` simulated cycles into named time-series, exported as CSV
//! and JSON for offline analysis (`metrics_tools`) and Perfetto counter
//! tracks.
//!
//! # Design
//!
//! [`MetricsHub`] follows the same zero-overhead-when-disabled pattern
//! as `mac_telemetry::Tracer`: a disabled hub is a `None` and every
//! operation short-circuits on one branch, so metrics never perturb
//! simulated behavior or (measurably) wall-clock time when off. Sampling
//! is *pull-based and observational*: once per interval the system loop
//! calls [`MetricsHub::sample`] and components append one point per
//! series via the [`Sampler`]. Components never hold the hub, so
//! simulated state — and therefore the content-addressed result cache —
//! is untouched by enabling metrics.
//!
//! Series are either [`SeriesKind::Gauge`] (an instantaneous level, e.g.
//! ARQ occupancy) or [`SeriesKind::Counter`] (a cumulative count, e.g.
//! requests emitted; per-window rates are derived at analysis time as
//! deltas between consecutive points). Series names are `/`-separated
//! paths (`node0/arq_occupancy`, `cube1/vault3_queue`) built with
//! [`Sampler::scoped`]. The registry is a `BTreeMap`, so export order is
//! deterministic and byte-identical across runs and `--jobs` settings.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;

pub use export::{MetricsSnapshot, SeriesData};

use mac_types::Histogram;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Whether a series reports an instantaneous level or a running total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Instantaneous level at the sample cycle (queue depth, occupancy).
    Gauge,
    /// Cumulative count since cycle 0; windowed rates are the deltas
    /// between consecutive samples.
    Counter,
}

impl SeriesKind {
    /// Stable lowercase name used in the CSV/JSON schema.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
        }
    }

    /// Inverse of [`SeriesKind::as_str`].
    pub fn parse(s: &str) -> Option<SeriesKind> {
        match s {
            "gauge" => Some(SeriesKind::Gauge),
            "counter" => Some(SeriesKind::Counter),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Series {
    kind: SeriesKind,
    points: Vec<(u64, u64)>,
}

#[derive(Debug)]
struct Registry {
    interval: u64,
    series: BTreeMap<String, Series>,
    last_cycle: Option<u64>,
}

/// Handle to the metrics registry shared by every component of one
/// simulation. Cheap to clone (an `Arc` bump); a disabled hub is free.
///
/// `PartialEq` always returns `true`: metrics are observational, so two
/// otherwise-equal components must compare equal regardless of
/// instrumentation (this keeps `#[derive(PartialEq)]` meaningful on
/// structs that embed a hub).
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl PartialEq for MetricsHub {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl MetricsHub {
    /// A disabled hub: every operation is a no-op behind one branch.
    pub fn disabled() -> Self {
        MetricsHub { inner: None }
    }

    /// An enabled hub sampling every `interval` simulated cycles
    /// (clamped to at least 1).
    pub fn new(interval: u64) -> Self {
        MetricsHub {
            inner: Some(Arc::new(Mutex::new(Registry {
                interval: interval.max(1),
                series: BTreeMap::new(),
                last_cycle: None,
            }))),
        }
    }

    /// Whether sampling is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The sampling interval in cycles (0 when disabled).
    pub fn interval(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.lock().unwrap().interval,
            None => 0,
        }
    }

    /// Whether the loop should take a sample at cycle `now`. This is the
    /// hot-path check: one branch when disabled.
    #[inline]
    pub fn should_sample(&self, now: u64) -> bool {
        match &self.inner {
            Some(inner) => now.is_multiple_of(inner.lock().unwrap().interval),
            None => false,
        }
    }

    /// Take one sample at cycle `now`: the closure appends points via
    /// the [`Sampler`]. A cycle is sampled at most once — repeat calls
    /// for the same `now` (e.g. the end-of-run tail sample landing on an
    /// interval boundary) are ignored, so every series stays aligned.
    pub fn sample(&self, now: u64, f: impl FnOnce(&mut Sampler<'_>)) {
        if let Some(inner) = &self.inner {
            let mut reg = inner.lock().unwrap();
            if reg.last_cycle == Some(now) {
                return;
            }
            reg.last_cycle = Some(now);
            let mut sampler = Sampler {
                reg: &mut reg,
                cycle: now,
                prefix: String::new(),
            };
            f(&mut sampler);
        }
    }

    /// Snapshot every series for export. `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        let inner = self.inner.as_ref()?;
        let reg = inner.lock().unwrap();
        Some(MetricsSnapshot {
            interval: reg.interval,
            series: reg
                .series
                .iter()
                .map(|(name, s)| SeriesData {
                    name: name.clone(),
                    kind: s.kind,
                    points: s.points.clone(),
                })
                .collect(),
        })
    }
}

/// Appends one sample's points to the registry. Passed to the closure
/// given to [`MetricsHub::sample`]; components expose a
/// `sample_metrics(&self, s: &mut Sampler)` method that registers their
/// series by name.
#[derive(Debug)]
pub struct Sampler<'a> {
    reg: &'a mut Registry,
    cycle: u64,
    prefix: String,
}

impl Sampler<'_> {
    fn push(&mut self, name: &str, kind: SeriesKind, value: u64) {
        let full = if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}{}", self.prefix, name)
        };
        let series = self.reg.series.entry(full).or_insert_with(|| Series {
            kind,
            points: Vec::new(),
        });
        series.points.push((self.cycle, value));
    }

    /// Record an instantaneous level (queue depth, occupancy, ...).
    pub fn gauge(&mut self, name: &str, value: u64) {
        self.push(name, SeriesKind::Gauge, value);
    }

    /// Record a cumulative count (total requests, busy sub-cycles, ...).
    /// Values must be non-decreasing across samples of one run.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.push(name, SeriesKind::Counter, value);
    }

    /// Record derived series from a log-scaled histogram: `{name}_count`
    /// (counter) plus `{name}_p50` / `{name}_p99` quantile gauges.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.push(&format!("{name}_count"), SeriesKind::Counter, h.count());
        self.push(&format!("{name}_p50"), SeriesKind::Gauge, h.quantile(0.5));
        self.push(&format!("{name}_p99"), SeriesKind::Gauge, h.quantile(0.99));
    }

    /// Run `f` with `segment/` prepended to every series name, nesting
    /// with any enclosing scope (`node0/`, `cube1/vaults/`, ...).
    pub fn scoped(&mut self, segment: &str, f: impl FnOnce(&mut Sampler<'_>)) {
        let saved = self.prefix.len();
        self.prefix.push_str(segment);
        self.prefix.push('/');
        f(self);
        self.prefix.truncate(saved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_inert() {
        let hub = MetricsHub::disabled();
        assert!(!hub.is_enabled());
        assert!(!hub.should_sample(0));
        assert_eq!(hub.interval(), 0);
        hub.sample(10, |_| panic!("closure must not run when disabled"));
        assert!(hub.snapshot().is_none());
    }

    #[test]
    fn sampling_builds_series_in_name_order() {
        let hub = MetricsHub::new(100);
        assert!(hub.is_enabled());
        assert_eq!(hub.interval(), 100);
        assert!(hub.should_sample(0));
        assert!(!hub.should_sample(150));
        assert!(hub.should_sample(200));

        for cycle in [100u64, 200, 300] {
            hub.sample(cycle, |s| {
                s.gauge("zeta", cycle / 100);
                s.counter("alpha", cycle * 2);
            });
        }
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.interval, 100);
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.series[0].kind, SeriesKind::Counter);
        assert_eq!(snap.series[0].points, [(100, 200), (200, 400), (300, 600)]);
        assert_eq!(snap.series[1].points, [(100, 1), (200, 2), (300, 3)]);
    }

    #[test]
    fn duplicate_cycle_is_sampled_once() {
        let hub = MetricsHub::new(10);
        hub.sample(10, |s| s.gauge("g", 1));
        hub.sample(10, |s| s.gauge("g", 2));
        let snap = hub.snapshot().unwrap();
        assert_eq!(snap.series[0].points, [(10, 1)]);
    }

    #[test]
    fn scoped_prefixes_nest_and_restore() {
        let hub = MetricsHub::new(1);
        hub.sample(5, |s| {
            s.scoped("node0", |s| {
                s.gauge("arq", 7);
                s.scoped("hmc", |s| s.counter("accesses", 9));
            });
            s.gauge("top", 1);
        });
        let snap = hub.snapshot().unwrap();
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["node0/arq", "node0/hmc/accesses", "top"]);
    }

    #[test]
    fn histogram_emits_derived_series() {
        let mut h = Histogram::new();
        for v in [3u64, 5, 300] {
            h.record(v);
        }
        let hub = MetricsHub::new(1);
        hub.sample(1, |s| s.histogram("lat", &h));
        let snap = hub.snapshot().unwrap();
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["lat_count", "lat_p50", "lat_p99"]);
        assert_eq!(snap.series[0].points, [(1, 3)]);
        assert_eq!(snap.series[0].kind, SeriesKind::Counter);
        assert_eq!(snap.series[1].kind, SeriesKind::Gauge);
    }

    #[test]
    fn hub_equality_is_observational() {
        assert_eq!(MetricsHub::new(5), MetricsHub::disabled());
        let a = MetricsHub::new(1);
        let b = a.clone();
        b.sample(1, |s| s.gauge("g", 1));
        // The clone shares the registry.
        assert_eq!(a.snapshot().unwrap().series.len(), 1);
    }

    #[test]
    fn interval_zero_clamps_to_one() {
        let hub = MetricsHub::new(0);
        assert_eq!(hub.interval(), 1);
        assert!(hub.should_sample(3));
    }
}
