//! Sparse linear algebra through the MAC: the HPC side of the paper's
//! workload set (HPCG's 27-point CG, NAS-CG's random sparse matrix,
//! NAS-SP's penta-diagonal line solves), plus an ARQ-size sensitivity
//! sweep on one kernel — a per-workload slice of Figure 11.
//!
//! ```text
//! cargo run --release --example sparse_solver [scale]
//! ```

use mac_repro::prelude::*;
use mac_repro::workloads::{hpcg, nas};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut cfg = ExperimentConfig::paper(8);
    cfg.workload.scale = scale;

    println!("-- solver kernels, Table 1 system --");
    println!(
        "{:<8} {:>12} {:>12} {:>11} {:>14}",
        "kernel", "raw reqs", "HMC txns", "coalesced", "bw efficiency"
    );
    let kernels: Vec<(&str, Box<dyn Workload>)> = vec![
        ("hpcg", Box::new(hpcg::Hpcg)),
        ("nas-cg", Box::new(nas::Cg)),
        ("nas-sp", Box::new(nas::Sp)),
    ];
    for (label, w) in &kernels {
        let r = run_workload(w.as_ref(), &cfg);
        println!(
            "{:<8} {:>12} {:>12} {:>10.2}% {:>13.2}%",
            label,
            r.soc.raw_requests,
            r.hmc.accesses(),
            r.coalescing_efficiency() * 100.0,
            r.bandwidth_efficiency() * 100.0,
        );
    }

    println!("\n-- ARQ sensitivity on HPCG (Figure 11, one workload) --");
    println!(
        "{:<12} {:>11} {:>14}",
        "ARQ entries", "coalesced", "mean lat (ns)"
    );
    for entries in [8usize, 16, 32, 64] {
        let mut c = cfg.clone();
        c.system.mac.arq_entries = entries;
        let r = run_workload(&hpcg::Hpcg, &c);
        println!(
            "{:<12} {:>10.2}% {:>14.1}",
            entries,
            r.coalescing_efficiency() * 100.0,
            r.mean_access_latency() / 3.3,
        );
    }
}
