//! The paper's full toolchain path: write a RISC-V gather kernel in
//! assembly, execute it on the RV64 interpreter (the Spike replacement),
//! and feed the captured memory trace through the MAC and HMC — including
//! the custom `spm.fetch` scratchpad instruction from the paper's ISA
//! extension (§5.1).
//!
//! ```text
//! cargo run --release --example riscv_trace
//! ```

use mac_repro::prelude::*;
use mac_repro::rv64::Reg;

/// A gather kernel: each thread walks its slice of an index array C and
/// sums B[C[i]], staging one 256 B block of C through the scratchpad via
/// `spm.fetch` per 32 indices (the software-managed-SPM style the paper's
/// node architecture expects).
const KERNEL: &str = r#"
    # a0 = C base, a1 = B base, a2 = element count, a3 = SPM buffer
    li   t0, 0            # i = 0
outer:
    bge  t0, a2, done
    # stage 32 indices (256 B) of C into the scratchpad
    slli t1, t0, 3
    add  t1, a0, t1       # &C[i]
    spm.fetch a3, t1, 256
    li   t2, 0            # j = 0
inner:
    slli t3, t2, 3
    add  t3, a3, t3       # &spm[j]
    ld   t4, 0(t3)        # idx = spm[j]  (SPM: untraced)
    slli t4, t4, 3
    add  t4, a1, t4       # &B[idx]
    ld   t5, 0(t4)        # the irregular gather (traced)
    add  s0, s0, t5       # sum
    addi t2, t2, 1
    li   t6, 32
    blt  t2, t6, inner
    addi t0, t0, 32
    j    outer
done:
    ecall
"#;

fn main() {
    let image = assemble(KERNEL).expect("kernel assembles");
    println!(
        "kernel: {} instructions, {} bytes",
        image.len() / 4,
        image.len()
    );

    // Build one RV64-backed thread per hardware thread. Each owns a
    // private functional memory with C pre-seeded to a pseudo-random
    // permutation (the data values drive the addresses the MAC sees).
    let threads = 8u64;
    let elems_per_thread = 512u64;
    let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
        .map(|t| {
            let image = assemble(KERNEL).expect("assembles");
            let mut p = Rv64Program::new(&image, 1 << 22, 64 << 10, 2_000_000);
            let c_base = 0x10_0000 + t * elems_per_thread * 8;
            let b_base = 0x80_0000u64;
            // Seed C[i] with a deterministic scramble into B's 2^16 slots
            // (the loader initializing the data segment).
            for i in 0..elems_per_thread {
                let idx = (i * 2654435761 + t * 97) % (1 << 16);
                p.write_mem(c_base + i * 8, &idx.to_le_bytes());
            }
            p.set_reg(Reg::parse("a0").unwrap(), c_base);
            p.set_reg(Reg::parse("a1").unwrap(), b_base);
            p.set_reg(Reg::parse("a2").unwrap(), elems_per_thread);
            p.set_reg(Reg::parse("a3").unwrap(), 0xFFFF_0000); // SPM base
            Box::new(p) as Box<dyn ThreadProgram>
        })
        .collect();

    let cfg = SystemConfig::paper(threads as usize);
    let report = SystemSim::new(&cfg, programs).run(100_000_000);

    println!("cycles                : {}", report.cycles);
    println!("raw memory requests   : {}", report.soc.raw_requests);
    println!("HMC transactions      : {}", report.hmc.accesses());
    println!(
        "coalescing efficiency : {:.2}%",
        report.coalescing_efficiency() * 100.0
    );
    println!(
        "bandwidth efficiency  : {:.2}% (raw 16 B floor: 33.33%)",
        report.bandwidth_efficiency() * 100.0
    );
    println!(
        "size mix              : 16B x{} 64B x{} 128B x{} 256B x{}",
        report.hmc.by_size[0], report.hmc.by_size[2], report.hmc.by_size[3], report.hmc.by_size[4]
    );
    // The spm.fetch bursts are 16 consecutive FLITs of one row: the MAC
    // should turn most of each burst into large packets.
    assert!(
        report.hmc.by_size[3] + report.hmc.by_size[4] > 0,
        "large packets were built"
    );
    assert_eq!(report.soc.raw_requests, report.soc.completions);
}
