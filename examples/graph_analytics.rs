//! Graph analytics with and without the MAC — the workload class the
//! paper's introduction motivates (BFS, PageRank, Louvain clustering
//! over power-law R-MAT graphs).
//!
//! ```text
//! cargo run --release --example graph_analytics [scale]
//! ```

use mac_repro::prelude::*;
use mac_repro::workloads::{gap, grappolo};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut cfg = ExperimentConfig::paper(8);
    cfg.workload.scale = scale;

    println!(
        "{:<10} {:>12} {:>12} {:>11} {:>11} {:>9}",
        "kernel", "raw reqs", "HMC txns", "coalesced", "conflicts-", "speedup"
    );
    let kernels: Vec<(&str, Box<dyn Workload>)> = vec![
        ("bfs", Box::new(gap::Bfs)),
        ("pagerank", Box::new(gap::PageRank)),
        ("louvain", Box::new(grappolo::Grappolo)),
    ];
    for (label, w) in kernels {
        let (with, without) = run_pair(w.as_ref(), &cfg);
        println!(
            "{:<10} {:>12} {:>12} {:>10.2}% {:>11} {:>8.2}%",
            label,
            with.soc.raw_requests,
            with.hmc.accesses(),
            with.coalescing_efficiency() * 100.0,
            without
                .bank_conflicts()
                .saturating_sub(with.bank_conflicts()),
            with.memory_speedup_vs(&without),
        );
        assert_eq!(
            with.soc.raw_requests, with.soc.completions,
            "all requests completed"
        );
    }
    println!("\n(coalesced = Eq. 3 efficiency; conflicts- = bank conflicts removed;");
    println!(" speedup = Figure 17's memory-system latency reduction vs no-MAC)");
}
