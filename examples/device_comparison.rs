//! Three memory devices, one coalescer: run a gather workload on
//! closed-page HMC (the paper's target), open-page HBM (§4.3's
//! portability claim), and a conventional DDR4 channel (§2.2's baseline),
//! with and without the MAC.
//!
//! ```text
//! cargo run --release --example device_comparison [scale]
//! ```

use mac_repro::prelude::*;
use mac_repro::types::MemBackend;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let w = mac_repro::workloads::sg::ScatterGather;

    println!(
        "{:<6} {:<8} {:>12} {:>12} {:>12} {:>10}",
        "device", "mac", "transactions", "row hits", "conflicts", "mean lat"
    );
    for backend in [MemBackend::Hmc, MemBackend::Hbm, MemBackend::Ddr] {
        for mac_on in [true, false] {
            let mut cfg = ExperimentConfig::paper(8);
            cfg.workload.scale = scale;
            cfg.system.backend = backend;
            cfg.system.mac_disabled = !mac_on;
            let r = run_workload(&w, &cfg);
            println!(
                "{:<6} {:<8} {:>12} {:>12} {:>12} {:>10.0}",
                format!("{backend:?}"),
                if mac_on { "on" } else { "off" },
                r.hmc.accesses(),
                r.hmc.row_hits,
                r.bank_conflicts(),
                r.mean_access_latency(),
            );
            assert_eq!(r.soc.raw_requests, r.soc.completions);
        }
    }
    println!();
    println!("HMC: closed-page -> zero row hits; the MAC removes the conflicts.");
    println!("HBM: open-page 1 KB rows absorb some locality; MAC still halves traffic.");
    println!("DDR: 8 KB rows harvest hits but one bus serializes everything.");
}
