//! Quickstart: coalesce a burst of fine-grained loads through the full
//! system — cores → MAC → HMC — and read the paper's headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mac_repro::prelude::*;

fn main() {
    // The paper's Table 1 system: 8 RV64 cores at 3.3 GHz, one 8 GB HMC
    // over 4 links, a 32-entry ARQ with 64 B entries.
    let cfg = SystemConfig::paper(8);

    // Eight threads sweep interleaved FLITs of 512 DRAM rows — the
    // cross-thread same-row pattern irregular kernels produce when a
    // parallel loop is distributed cyclically.
    let programs: Vec<Box<dyn ThreadProgram>> = (0..8u64)
        .map(|t| {
            let addrs = (0..512u64).map(move |row| 0x10_0000 + row * 256 + t * 16);
            Box::new(ReplayProgram::loads(addrs, 1)) as Box<dyn ThreadProgram>
        })
        .collect();

    let report = SystemSim::new(&cfg, programs).run(50_000_000);

    println!("simulated cycles        : {}", report.cycles);
    println!("raw requests issued     : {}", report.soc.raw_requests);
    println!("HMC transactions        : {}", report.hmc.accesses());
    println!(
        "coalescing efficiency   : {:.2}%  (Eq. 3; fraction of raw requests merged away)",
        report.coalescing_efficiency() * 100.0
    );
    println!(
        "bandwidth efficiency    : {:.2}%  (Eq. 1; payload / link bytes; raw 16 B = 33.33%)",
        report.bandwidth_efficiency() * 100.0
    );
    println!("bank conflicts          : {}", report.bank_conflicts());
    println!(
        "transaction size mix    : 16B x{}, 32B x{}, 64B x{}, 128B x{}, 256B x{}",
        report.hmc.by_size[0],
        report.hmc.by_size[1],
        report.hmc.by_size[2],
        report.hmc.by_size[3],
        report.hmc.by_size[4],
    );
    println!(
        "mean access latency     : {:.1} cycles ({:.1} ns)",
        report.mean_access_latency(),
        report.mean_access_latency() / 3.3
    );

    assert!(
        report.hmc.accesses() < report.soc.raw_requests,
        "the MAC merged requests"
    );
}
