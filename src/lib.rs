//! # mac-repro
//!
//! A from-scratch Rust reproduction of **MAC: Memory Access Coalescer for
//! 3D-Stacked Memory** (Wang, Tumeo, Leidel, Li, Chen — ICPP 2019).
//!
//! MAC is a processor-side coalescing unit that merges fine-grained
//! (16 B FLIT) memory requests from a cache-less multicore node into the
//! large packets (64–256 B) that Hybrid Memory Cube devices need to reach
//! peak bandwidth — cutting request counts roughly in half and removing
//! the bank conflicts that closed-page 3D-stacked DRAM suffers under
//! irregular access streams.
//!
//! This facade re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`types`] | `mac-types` | addresses, FLIT maps, requests, packets, configuration |
//! | [`coalescer`] | `mac-coalescer` | the MAC itself: routers, ARQ, request builder, FLIT table |
//! | [`hmc`] | `hmc-model` | the HMC device simulator (links, vaults, closed-page banks) |
//! | [`cache`] | `cache-model` | set-associative cache + MSHR baseline |
//! | [`rv64`] | `rv64-sim` | RV64 interpreter + assembler with trace capture |
//! | [`soc`] | `soc-sim` | cores, scratchpads, thread programs |
//! | [`workloads`] | `mac-workloads` | the 12 irregular benchmarks |
//! | [`sim`] | `mac-sim` | full-system simulator + figure harness |
//!
//! ## Quickstart
//!
//! Coalesce sixteen same-row loads into device transactions:
//!
//! ```
//! use mac_repro::prelude::*;
//!
//! let cfg = SystemConfig::paper(8);
//! // Eight threads, each loading one FLIT of the same 256 B DRAM row.
//! let programs: Vec<Box<dyn ThreadProgram>> = (0..8)
//!     .map(|t| {
//!         Box::new(ReplayProgram::loads([0x4000 + t * 16], 0)) as Box<dyn ThreadProgram>
//!     })
//!     .collect();
//! let report = SystemSim::new(&cfg, programs).run(1_000_000);
//!
//! assert_eq!(report.soc.completions, 8);
//! // The MAC merged the eight raw requests into fewer HMC transactions.
//! assert!(report.hmc.accesses() < 8);
//! ```
//!
//! Run a paper benchmark end to end:
//!
//! ```
//! use mac_repro::prelude::*;
//!
//! let mut cfg = ExperimentConfig::paper(4);
//! cfg.workload.scale = 1;
//! let (with_mac, without_mac) = run_pair(&mac_repro::workloads::sg::ScatterGather, &cfg);
//! assert!(with_mac.hmc.accesses() < without_mac.hmc.accesses());
//! assert!(with_mac.memory_speedup_vs(&without_mac) > 0.0);
//! ```

pub use cache_model as cache;
pub use hmc_model as hmc;
pub use mac_coalescer as coalescer;
pub use mac_sim as sim;
pub use mac_types as types;
pub use mac_workloads as workloads;
pub use rv64_sim as rv64;
pub use soc_sim as soc;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use cache_model::{Cache, CacheConfig, MshrFile};
    pub use hmc_model::HmcDevice;
    pub use mac_coalescer::{Mac, MacEvent};
    pub use mac_sim::experiment::{run_pair, run_workload, ExperimentConfig};
    pub use mac_sim::{RunReport, SystemSim};
    pub use mac_types::{
        FlitMap, HmcConfig, MacConfig, MemOpKind, PhysAddr, RawRequest, ReqSize, SocConfig,
        SystemConfig,
    };
    pub use mac_workloads::{all_workloads, by_name, Workload, WorkloadParams};
    pub use rv64_sim::{assemble, Cpu, FlatMemory};
    pub use soc_sim::{ReplayProgram, Rv64Program, ThreadOp, ThreadProgram};
}
